// Package ordering implements the global partial ordering of ADs used by
// the ECMA (NIST) proposal to express policy in the topology (paper §5.1.1).
//
// Every inter-AD link is labelled "up" or "down" according to the relative
// position of its endpoints in the ordering. The forwarding rule — once a
// packet (or routing update) traverses a down link it may never traverse
// another up link — prevents loops and the count-to-infinity phenomenon.
//
// The package also implements the paper's satisfiability concern: the
// policies of all ADs may not be expressible in any single partial ordering,
// in which case a central authority must negotiate policy relaxation
// (experiment E10).
package ordering

import (
	"fmt"
	"sort"

	"repro/internal/ad"
)

// Direction labels a link traversal relative to the partial ordering.
type Direction uint8

const (
	// Up is a traversal toward an AD higher in the ordering.
	Up Direction = iota
	// Down is a traversal toward an AD lower in the ordering.
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Ordering assigns each AD a rank; higher rank is higher in the hierarchy.
// Ranks are strict (no two ADs share one) so every link has a definite
// direction, which the ECMA design requires for the up/down labelling.
type Ordering struct {
	rank map[ad.ID]int64
}

// Rank returns the rank of id (0 if unknown).
func (o Ordering) Rank(id ad.ID) int64 { return o.rank[id] }

// Len returns the number of ranked ADs.
func (o Ordering) Len() int { return len(o.rank) }

// Direction returns the direction of travelling from one AD to an adjacent
// AD: Up when the target ranks higher.
func (o Ordering) Direction(from, to ad.ID) Direction {
	if o.rank[to] > o.rank[from] {
		return Up
	}
	return Down
}

// UpDownValid reports whether path obeys the ECMA forwarding rule: after
// the first down traversal, no up traversal may occur.
func (o Ordering) UpDownValid(path ad.Path) bool {
	seenDown := false
	for i := 1; i < len(path); i++ {
		switch o.Direction(path[i-1], path[i]) {
		case Down:
			seenDown = true
		case Up:
			if seenDown {
				return false
			}
		}
	}
	return true
}

// Strict reports whether no two ADs in ids share a rank.
func (o Ordering) Strict(ids []ad.ID) bool {
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		r := o.rank[id]
		if seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

// FromLevels derives the natural ordering from the topology hierarchy:
// backbones above regionals above metros above campuses, with AD ID as a
// deterministic tie-break within a level. This is the ordering a central
// authority would compute for a purely hierarchical internet.
func FromLevels(g *ad.Graph) Ordering {
	o := Ordering{rank: make(map[ad.ID]int64, g.NumADs())}
	for _, info := range g.ADs() {
		major := int64(3 - int64(info.Level)) // campus=0 ... backbone=3
		o.rank[info.ID] = major<<33 - int64(info.ID)
	}
	return o
}

// Constraint requires Above to rank strictly higher than Below. ADs express
// their topological policies to the central authority as such constraints
// (e.g. "my provider must be above me", "that AD must not receive my
// updates from above").
type Constraint struct {
	Above, Below ad.ID
}

// String implements fmt.Stringer.
func (c Constraint) String() string { return fmt.Sprintf("%v>%v", c.Above, c.Below) }

// FromConstraints attempts to build an ordering satisfying every
// constraint. It reports false when the constraints are cyclic, i.e. not
// mutually satisfiable in any single partial ordering — the failure mode
// the paper warns about (§5.1.1).
//
// Ranks are assigned by longest-path layering of the constraint DAG;
// unconstrained ADs from universe get distinct ranks below all constrained
// ones.
func FromConstraints(universe []ad.ID, cons []Constraint) (Ordering, bool) {
	// Build the constraint digraph Above -> Below.
	succ := make(map[ad.ID][]ad.ID)
	indeg := make(map[ad.ID]int)
	nodes := make(map[ad.ID]bool)
	for _, c := range cons {
		if c.Above == c.Below {
			return Ordering{}, false
		}
		succ[c.Above] = append(succ[c.Above], c.Below)
		indeg[c.Below]++
		nodes[c.Above] = true
		nodes[c.Below] = true
	}
	// Kahn's algorithm with deterministic order.
	var frontier []ad.ID
	for id := range nodes {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	layer := make(map[ad.ID]int64, len(nodes))
	processed := 0
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, id := range frontier {
			processed++
			for _, below := range succ[id] {
				if layer[id]+1 > layer[below] {
					layer[below] = layer[id] + 1
				}
				indeg[below]--
				if indeg[below] == 0 {
					next = append(next, below)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	if processed != len(nodes) {
		return Ordering{}, false // cycle
	}
	// Convert layers (0 = top) into ranks (higher = top), ID tie-break.
	var maxLayer int64
	for _, l := range layer {
		if l > maxLayer {
			maxLayer = l
		}
	}
	o := Ordering{rank: make(map[ad.ID]int64, len(universe))}
	for id := range nodes {
		o.rank[id] = (maxLayer-layer[id]+1)<<33 - int64(id)
	}
	for _, id := range universe {
		if !nodes[id] {
			o.rank[id] = -int64(id) // below all constrained ADs
		}
	}
	return o, true
}

// findCycle returns one directed cycle in the constraint graph as a list of
// constraint indices, or nil if acyclic.
func findCycle(cons []Constraint) []int {
	// adjacency with constraint indices
	adj := make(map[ad.ID][]int)
	for i, c := range cons {
		adj[c.Above] = append(adj[c.Above], i)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ad.ID]int)
	parentEdge := make(map[ad.ID]int)
	var cycle []int
	var dfs func(u ad.ID) bool
	dfs = func(u ad.ID) bool {
		color[u] = gray
		for _, ei := range adj[u] {
			v := cons[ei].Below
			switch color[v] {
			case white:
				parentEdge[v] = ei
				if dfs(v) {
					return true
				}
			case gray:
				// Found a cycle: walk back from u to v.
				cycle = append(cycle, ei)
				for x := u; x != v; {
					pe := parentEdge[x]
					cycle = append(cycle, pe)
					x = cons[pe].Above
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	var nodes []ad.ID
	for id := range adj {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Negotiate simulates the central authority's conflict-resolution process:
// while the constraint set is cyclic, one constraint on a detected cycle is
// dropped (the highest-index one, i.e. most recently registered policy
// loses). It returns the satisfiable subset and the number of negotiation
// rounds (dropped constraints).
func Negotiate(cons []Constraint) (kept []Constraint, rounds int) {
	kept = append([]Constraint(nil), cons...)
	for {
		cycle := findCycle(kept)
		if cycle == nil {
			return kept, rounds
		}
		drop := cycle[0]
		for _, i := range cycle {
			if i > drop {
				drop = i
			}
		}
		kept = append(kept[:drop], kept[drop+1:]...)
		rounds++
	}
}

// Satisfiable reports whether the constraint set admits a single partial
// ordering.
func Satisfiable(cons []Constraint) bool {
	_, ok := FromConstraints(nil, cons)
	return ok
}
