package ordering_test

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/ordering"
)

// ExampleSatisfiable shows the paper's §5.1.1 concern: individually
// reasonable topological policies can be jointly unsatisfiable, requiring a
// central authority to negotiate one away.
func ExampleSatisfiable() {
	cons := []ordering.Constraint{
		{Above: 1, Below: 2}, // AD1 insists on being AD2's provider
		{Above: 2, Below: 3}, // AD2 insists on being AD3's provider
		{Above: 3, Below: 1}, // AD3 insists on being AD1's provider
	}
	fmt.Println("satisfiable:", ordering.Satisfiable(cons))
	kept, rounds := ordering.Negotiate(cons)
	fmt.Println("after negotiation:", len(kept), "constraints kept,", rounds, "dropped")
	fmt.Println("now satisfiable:", ordering.Satisfiable(kept))
	// Output:
	// satisfiable: false
	// after negotiation: 2 constraints kept, 1 dropped
	// now satisfiable: true
}

// ExampleOrdering_UpDownValid demonstrates the ECMA up/down forwarding
// rule on a tiny hierarchy.
func ExampleOrdering_UpDownValid() {
	cons := []ordering.Constraint{
		{Above: 1, Below: 2}, // backbone above regional
		{Above: 2, Below: 3}, // regional above campus
		{Above: 2, Below: 4},
	}
	o, _ := ordering.FromConstraints([]ad.ID{1, 2, 3, 4}, cons)
	fmt.Println(o.UpDownValid(ad.Path{3, 2, 4})) // up to the regional, down to a sibling
	fmt.Println(o.UpDownValid(ad.Path{2, 3, 2})) // down then up: forbidden
	// Output:
	// true
	// false
}
