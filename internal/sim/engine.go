// Package sim provides the deterministic discrete-event simulation engine on
// which all routing protocols in this repository run.
//
// Simulated time is measured in integer microseconds. Events that share a
// timestamp are executed in the order they were scheduled, so a run is fully
// reproducible given the same seed and scenario.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in microseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// Processed counts events executed so far.
	Processed uint64
}

// NewEngine returns an engine with an empty queue at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would make the run non-causal.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop aborts the current Run/RunUntil loop after the in-flight event
// finishes. Further Run calls resume normally.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty. It returns the time of the
// last executed event.
func (e *Engine) Run() Time {
	return e.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= limit, in order. It returns
// the current time when it stops (the last event time, or limit if the queue
// still holds later events).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.Processed++
		next.fn()
	}
	return e.now
}

// Step executes exactly one event if any is pending, reporting whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*event)
	e.now = next.at
	e.Processed++
	next.fn()
	return true
}
