// Package sim provides the deterministic discrete-event simulation engine on
// which all routing protocols in this repository run.
//
// Simulated time is measured in integer microseconds. Events that share a
// timestamp are executed in the order they were scheduled, so a run is fully
// reproducible given the same seed and scenario.
package sim

import (
	"fmt"
)

// Time is a simulated timestamp in microseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/int64(Second), int64(t)%int64(Second))
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (time, sequence). It
// stores events by value and sifts manually, so scheduling allocates nothing
// beyond occasional slice growth (no per-event box, no interface conversion).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s
	for i := 0; ; {
		smallest := i
		if l := 2*i + 1; l < n && s.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool

	// Processed counts events executed so far.
	Processed uint64
}

// initialEventCap presizes the event queue so steady-state protocol bursts
// (floods, all-pairs setups) do not pay repeated heap growth.
const initialEventCap = 1024

// NewEngine returns an engine with an empty queue at time zero.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, initialEventCap)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it would make the run non-causal.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop aborts the current Run/RunUntil loop after the in-flight event
// finishes. Further Run calls resume normally.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty. It returns the time of the
// last executed event.
func (e *Engine) Run() Time {
	return e.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= limit, in order. It returns
// the current time when it stops (the last event time, or limit if the queue
// still holds later events).
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > limit {
			e.now = limit
			return e.now
		}
		next := e.queue.pop()
		e.now = next.at
		e.Processed++
		next.fn()
	}
	return e.now
}

// Step executes exactly one event if any is pending, reporting whether one
// was executed. Like RunUntil, it clears any Stop left over from a previous
// loop on entry, so a Stop issued inside an event callback never leaks into
// a later Step or Run.
func (e *Engine) Step() bool {
	e.stopped = false
	if len(e.queue) == 0 {
		return false
	}
	next := e.queue.pop()
	e.now = next.at
	e.Processed++
	next.fn()
	return true
}
