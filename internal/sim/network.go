package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ad"
)

// Node is the behaviour of one AD's routing entity (its route server /
// border gateway complex, abstracted to a single process per the paper's
// AD-level model).
//
// All callbacks run inside the event loop; implementations must not block
// and must not retain the payload slice beyond the call.
type Node interface {
	// ID returns the AD this node represents.
	ID() ad.ID
	// Start is invoked once at simulation time zero, before any messages.
	Start(nw *Network)
	// Receive is invoked when a protocol message from an adjacent AD
	// arrives. payload is the marshalled wire message.
	Receive(nw *Network, from ad.ID, payload []byte)
	// LinkDown is invoked when an incident link fails.
	LinkDown(nw *Network, neighbor ad.ID)
	// LinkUp is invoked when an incident link recovers.
	LinkUp(nw *Network, neighbor ad.ID)
}

// Stats aggregates traffic counters for a run. Counters are cumulative and
// never reset by the network itself.
type Stats struct {
	MessagesSent     uint64
	BytesSent        uint64
	MessagesDropped  uint64 // sends attempted over down/absent links
	MessagesByKind   map[string]uint64
	BytesByKind      map[string]uint64
	DeliveredByLink  map[[2]ad.ID]uint64
	MaxQueuedPending int
}

func newStats() *Stats {
	return &Stats{
		MessagesByKind:  make(map[string]uint64),
		BytesByKind:     make(map[string]uint64),
		DeliveredByLink: make(map[[2]ad.ID]uint64),
	}
}

// KindsSorted returns the message kinds seen, sorted, for stable reporting.
func (s *Stats) KindsSorted() []string {
	kinds := make([]string, 0, len(s.MessagesByKind))
	for k := range s.MessagesByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Network couples the event engine, the AD graph, and the per-AD nodes, and
// simulates message transmission over inter-AD links with propagation delay.
//
// Links are FIFO: delay is constant per link, so delivery order matches send
// order. A link can be failed and restored during the run; messages in
// flight when a link fails are lost (they were "on the wire").
type Network struct {
	Engine *Engine
	Graph  *ad.Graph
	Stats  *Stats

	nodes map[ad.ID]Node
	down  map[[2]ad.ID]bool
	// epoch increments on each link failure; in-flight messages stamped
	// with an older epoch for that link are dropped on delivery.
	linkEpoch map[[2]ad.ID]uint64
	// busyUntil tracks each directed link's transmitter: a message may
	// not start serializing before the previous one finished, which
	// keeps links FIFO even with size-dependent transmission delays.
	// FailLink clears both directed entries so a restored link starts
	// with an idle transmitter instead of inheriting pre-failure backlog.
	busyUntil map[[2]ad.ID]Time
	rng       *rand.Rand

	// freeBufs recycles payload copies. The Node contract forbids
	// retaining the payload beyond Receive, so a delivered (or dropped)
	// buffer can be reused by a later Send.
	freeBufs [][]byte

	// DefaultDelay is used for links whose DelayMicros is zero.
	DefaultDelay Time

	// lastSend records the latest transmission-completion time over all
	// Sends (start of serialization plus transmission delay), used by
	// convergence detection.
	lastSend Time

	// Trace, if non-nil, receives a line per delivered message. Used by
	// tests and the CLI's -trace flag.
	Trace func(format string, args ...interface{})
}

// NewNetwork builds a network over graph with all links initially up.
// Seed fixes the RNG for any randomized behaviour (delivery jitter is off by
// default, so most runs never consume randomness).
func NewNetwork(g *ad.Graph, seed int64) *Network {
	return &Network{
		Engine:       NewEngine(),
		Graph:        g,
		Stats:        newStats(),
		nodes:        make(map[ad.ID]Node),
		down:         make(map[[2]ad.ID]bool),
		linkEpoch:    make(map[[2]ad.ID]uint64),
		busyUntil:    make(map[[2]ad.ID]Time),
		rng:          rand.New(rand.NewSource(seed)),
		DefaultDelay: 10 * Millisecond,
	}
}

// AddNode registers the node for its AD. Registering two nodes for one AD
// panics: it is always a harness bug.
func (nw *Network) AddNode(n Node) {
	if _, dup := nw.nodes[n.ID()]; dup {
		panic(fmt.Sprintf("sim: duplicate node for %v", n.ID()))
	}
	nw.nodes[n.ID()] = n
}

// Node returns the registered node for id, or nil.
func (nw *Network) Node(id ad.ID) Node { return nw.nodes[id] }

// Nodes returns all registered nodes sorted by AD ID.
func (nw *Network) Nodes() []Node {
	ids := make([]ad.ID, 0, len(nw.nodes))
	for id := range nw.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = nw.nodes[id]
	}
	return out
}

// Rand returns the network's deterministic RNG.
func (nw *Network) Rand() *rand.Rand { return nw.rng }

// Now returns the current simulated time.
func (nw *Network) Now() Time { return nw.Engine.Now() }

// After schedules fn after d; it is the timer facility for nodes.
func (nw *Network) After(d Time, fn func()) { nw.Engine.After(d, fn) }

// LastSend returns the completion time of the latest message transmission
// (when its last bit left the transmitter), which convergence detection uses
// as a quiescence marker. On links without bandwidth modelling this is simply
// the time of the most recent Send.
func (nw *Network) LastSend() Time { return nw.lastSend }

// getBuf returns a payload buffer of length n, reusing a recycled copy when
// one is large enough.
func (nw *Network) getBuf(n int) []byte {
	if k := len(nw.freeBufs); k > 0 {
		if b := nw.freeBufs[k-1]; cap(b) >= n {
			nw.freeBufs[k-1] = nil
			nw.freeBufs = nw.freeBufs[:k-1]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf recycles a payload buffer once its delivery (or drop) is complete.
// Safe because Nodes must not retain the payload beyond Receive.
func (nw *Network) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	nw.freeBufs = append(nw.freeBufs, b[:0])
}

func linkKey(a, b ad.ID) [2]ad.ID {
	if a > b {
		a, b = b, a
	}
	return [2]ad.ID{a, b}
}

// LinkIsUp reports whether the link between a and b exists and is currently
// up.
func (nw *Network) LinkIsUp(a, b ad.ID) bool {
	if !nw.Graph.HasLink(a, b) {
		return false
	}
	return !nw.down[linkKey(a, b)]
}

// UpNeighbors returns the neighbors of id reachable over currently-up links,
// in ascending order. The returned slice may alias the graph's cached
// adjacency index: callers must not modify it. While no link in the network
// is down (the common case during convergence), it allocates nothing.
func (nw *Network) UpNeighbors(id ad.ID) []ad.ID {
	all := nw.Graph.Neighbors(id)
	if len(nw.down) == 0 {
		return all
	}
	for i, n := range all {
		if nw.down[linkKey(id, n)] {
			// Copy-on-filter: only pay for an allocation when some
			// incident link is actually down.
			out := make([]ad.ID, i, len(all)-1)
			copy(out, all[:i])
			for _, m := range all[i+1:] {
				if !nw.down[linkKey(id, m)] {
					out = append(out, m)
				}
			}
			return out
		}
	}
	return all
}

// Send transmits a marshalled protocol message from one AD to an adjacent
// AD. kind labels the message for the statistics tables. Send returns false
// (and counts a drop) if the ADs are not adjacent or the link is down.
func (nw *Network) Send(kind string, from, to ad.ID, payload []byte) bool {
	link, ok := nw.Graph.LinkBetween(from, to)
	if !ok || nw.down[linkKey(from, to)] {
		nw.Stats.MessagesDropped++
		return false
	}
	prop := Time(link.DelayMicros)
	if prop == 0 {
		prop = nw.DefaultDelay
	}
	// Serialization: the directed transmitter is busy until the previous
	// message finished clocking out, so links stay FIFO.
	dirKey := [2]ad.ID{from, to}
	start := nw.Now()
	if busy := nw.busyUntil[dirKey]; busy > start {
		start = busy
	}
	var tx Time
	if link.BandwidthBps > 0 {
		tx = Time(int64(len(payload)) * 8 * int64(Second) / link.BandwidthBps)
	}
	nw.busyUntil[dirKey] = start + tx
	delay := (start - nw.Now()) + tx + prop
	nw.Stats.MessagesSent++
	nw.Stats.BytesSent += uint64(len(payload))
	nw.Stats.MessagesByKind[kind]++
	nw.Stats.BytesByKind[kind] += uint64(len(payload))
	// Convergence marker: when the transmission finishes clocking out, not
	// when Send was called — a queued message on a bandwidth-limited link
	// is still "protocol activity" until its last bit leaves.
	if end := start + tx; end > nw.lastSend {
		nw.lastSend = end
	}
	key := linkKey(from, to)
	epoch := nw.linkEpoch[key]
	buf := nw.getBuf(len(payload))
	copy(buf, payload)
	nw.Engine.After(delay, func() {
		// A failure while the message was in flight loses it.
		if nw.down[key] || nw.linkEpoch[key] != epoch {
			nw.Stats.MessagesDropped++
			nw.putBuf(buf)
			return
		}
		nw.Stats.DeliveredByLink[key]++
		if nw.Trace != nil {
			nw.Trace("%v %s %v->%v %dB", nw.Now(), kind, from, to, len(buf))
		}
		if node := nw.nodes[to]; node != nil {
			node.Receive(nw, from, buf)
		}
		nw.putBuf(buf)
	})
	if p := nw.Engine.Pending(); p > nw.Stats.MaxQueuedPending {
		nw.Stats.MaxQueuedPending = p
	}
	return true
}

// Flood sends payload to every up neighbor of from except those in skip.
// It returns the number of copies sent.
func (nw *Network) Flood(kind string, from ad.ID, payload []byte, skip ...ad.ID) int {
	sent := 0
	for _, n := range nw.UpNeighbors(from) {
		skipped := false
		for _, s := range skip {
			if n == s {
				skipped = true
				break
			}
		}
		if skipped {
			continue
		}
		if nw.Send(kind, from, n, payload) {
			sent++
		}
	}
	return sent
}

// FailLink marks the link between a and b as down and notifies both
// endpoints' nodes immediately (the paper's model assumes border gateways
// detect adjacent link failures directly). In-flight messages are lost.
func (nw *Network) FailLink(a, b ad.ID) error {
	if !nw.Graph.HasLink(a, b) {
		return fmt.Errorf("sim: no link %v-%v", a, b)
	}
	key := linkKey(a, b)
	if nw.down[key] {
		return nil
	}
	nw.down[key] = true
	nw.linkEpoch[key]++
	// The failure drops whatever was serializing or queued at either
	// transmitter; a later restore must start with idle transmitters, not
	// inherit pre-failure backlog.
	delete(nw.busyUntil, [2]ad.ID{a, b})
	delete(nw.busyUntil, [2]ad.ID{b, a})
	if n := nw.nodes[a]; n != nil {
		n.LinkDown(nw, b)
	}
	if n := nw.nodes[b]; n != nil {
		n.LinkDown(nw, a)
	}
	return nil
}

// RestoreLink brings a failed link back up and notifies both endpoints.
func (nw *Network) RestoreLink(a, b ad.ID) error {
	if !nw.Graph.HasLink(a, b) {
		return fmt.Errorf("sim: no link %v-%v", a, b)
	}
	key := linkKey(a, b)
	if !nw.down[key] {
		return nil
	}
	delete(nw.down, key)
	if n := nw.nodes[a]; n != nil {
		n.LinkUp(nw, b)
	}
	if n := nw.nodes[b]; n != nil {
		n.LinkUp(nw, a)
	}
	return nil
}

// Start invokes Start on every node (in AD order) at the current time.
func (nw *Network) Start() {
	for _, n := range nw.Nodes() {
		n.Start(nw)
	}
}

// RunToQuiescence starts (if not yet started) and runs the event loop until
// the queue drains or limit is reached. It returns the convergence time
// (time of the last message transmission) and whether the queue drained
// before the limit.
func (nw *Network) RunToQuiescence(limit Time) (Time, bool) {
	end := nw.Engine.RunUntil(limit)
	return nw.lastSend, end < limit || nw.Engine.Pending() == 0
}
