package sim

import (
	"testing"

	"repro/internal/ad"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // same time: FIFO by seq
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(1, func() {
		e.After(2, func() { fired = append(fired, e.Now()) })
		e.After(1, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Errorf("fired = %v, want [2 3]", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(5, func() { ran++ })
	e.At(15, func() { ran++ })
	now := e.RunUntil(10)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if now != 10 {
		t.Errorf("RunUntil returned %v, want 10", now)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 {
		t.Errorf("after Run, ran = %d, want 2", ran)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop should halt loop)", ran)
	}
	e.Run() // resumes
	if ran != 2 {
		t.Errorf("after resume ran = %d, want 2", ran)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(3, func() { ran++ })
	if !e.Step() {
		t.Fatal("Step = false with pending event")
	}
	if ran != 1 || e.Now() != 3 {
		t.Errorf("ran=%d now=%v", ran, e.Now())
	}
	if e.Step() {
		t.Error("Step on empty queue = true")
	}
}

func TestTimeString(t *testing.T) {
	if got := (2*Second + 5*Microsecond).String(); got != "2.000005s" {
		t.Errorf("Time.String = %q", got)
	}
}

// echoNode replies "pong" to any message containing "ping".
type echoNode struct {
	id       ad.ID
	received []string
	downs    []ad.ID
	ups      []ad.ID
}

func (n *echoNode) ID() ad.ID         { return n.id }
func (n *echoNode) Start(nw *Network) {}
func (n *echoNode) Receive(nw *Network, from ad.ID, payload []byte) {
	n.received = append(n.received, string(payload))
	if string(payload) == "ping" {
		nw.Send("pong", n.id, from, []byte("pong"))
	}
}
func (n *echoNode) LinkDown(nw *Network, nb ad.ID) { n.downs = append(n.downs, nb) }
func (n *echoNode) LinkUp(nw *Network, nb ad.ID)   { n.ups = append(n.ups, nb) }

func twoNodeNet(t *testing.T) (*Network, *echoNode, *echoNode) {
	t.Helper()
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: a, B: b, DelayMicros: int64(5 * Millisecond)}); err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(g, 1)
	na := &echoNode{id: a}
	nb := &echoNode{id: b}
	nw.AddNode(na)
	nw.AddNode(nb)
	return nw, na, nb
}

func TestNetworkSendDelivery(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	if !nw.Send("ping", na.id, nb.id, []byte("ping")) {
		t.Fatal("Send = false")
	}
	nw.Engine.Run()
	if len(nb.received) != 1 || nb.received[0] != "ping" {
		t.Errorf("b received %v", nb.received)
	}
	if len(na.received) != 1 || na.received[0] != "pong" {
		t.Errorf("a received %v", na.received)
	}
	if nw.Stats.MessagesSent != 2 {
		t.Errorf("MessagesSent = %d, want 2", nw.Stats.MessagesSent)
	}
	if nw.Stats.BytesSent != 8 {
		t.Errorf("BytesSent = %d, want 8", nw.Stats.BytesSent)
	}
	if nw.Stats.MessagesByKind["ping"] != 1 || nw.Stats.MessagesByKind["pong"] != 1 {
		t.Errorf("by kind = %v", nw.Stats.MessagesByKind)
	}
	// Delay is 5ms each way.
	if nw.Engine.Now() != 10*Millisecond {
		t.Errorf("final time = %v, want 10ms", nw.Engine.Now())
	}
}

func TestNetworkSendNonAdjacent(t *testing.T) {
	nw, na, _ := twoNodeNet(t)
	if nw.Send("x", na.id, 99, []byte("x")) {
		t.Error("Send to non-adjacent returned true")
	}
	if nw.Stats.MessagesDropped != 1 {
		t.Errorf("drops = %d, want 1", nw.Stats.MessagesDropped)
	}
}

func TestNetworkFailLink(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	if err := nw.FailLink(na.id, nb.id); err != nil {
		t.Fatal(err)
	}
	if len(na.downs) != 1 || na.downs[0] != nb.id {
		t.Errorf("a downs = %v", na.downs)
	}
	if len(nb.downs) != 1 || nb.downs[0] != na.id {
		t.Errorf("b downs = %v", nb.downs)
	}
	if nw.Send("ping", na.id, nb.id, []byte("ping")) {
		t.Error("Send over failed link returned true")
	}
	if nw.LinkIsUp(na.id, nb.id) {
		t.Error("LinkIsUp after failure")
	}
	// Idempotent failure.
	if err := nw.FailLink(na.id, nb.id); err != nil {
		t.Errorf("second FailLink: %v", err)
	}
	if len(na.downs) != 1 {
		t.Errorf("second FailLink re-notified: %v", na.downs)
	}
	if err := nw.RestoreLink(na.id, nb.id); err != nil {
		t.Fatal(err)
	}
	if len(na.ups) != 1 {
		t.Errorf("a ups = %v", na.ups)
	}
	if !nw.LinkIsUp(na.id, nb.id) {
		t.Error("LinkIsUp after restore = false")
	}
	if err := nw.FailLink(1, 42); err == nil {
		t.Error("FailLink on absent link: want error")
	}
}

func TestNetworkInFlightLossOnFailure(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	nw.Send("ping", na.id, nb.id, []byte("ping"))
	// Fail the link while the message is in flight.
	nw.Engine.At(1*Millisecond, func() { nw.FailLink(na.id, nb.id) })
	nw.Engine.Run()
	if len(nb.received) != 0 {
		t.Errorf("message delivered over failed link: %v", nb.received)
	}
	if nw.Stats.MessagesDropped == 0 {
		t.Error("in-flight loss not counted as drop")
	}
}

func TestNetworkInFlightLossAcrossRestore(t *testing.T) {
	// A message in flight when the link fails must not be delivered even
	// if the link is restored before its arrival time (epoch check).
	nw, na, nb := twoNodeNet(t)
	nw.Send("ping", na.id, nb.id, []byte("ping"))
	nw.Engine.At(1*Millisecond, func() {
		nw.FailLink(na.id, nb.id)
		nw.RestoreLink(na.id, nb.id)
	})
	nw.Engine.Run()
	if len(nb.received) != 0 {
		t.Errorf("stale in-flight message delivered after restore: %v", nb.received)
	}
}

func TestNetworkFlood(t *testing.T) {
	g := ad.NewGraph()
	hub := g.AddAD("hub", ad.Transit, ad.Backbone)
	var leaves []ad.ID
	for i := 0; i < 4; i++ {
		leaf := g.AddAD("leaf", ad.Stub, ad.Campus)
		leaves = append(leaves, leaf)
		if err := g.AddLink(ad.Link{A: hub, B: leaf}); err != nil {
			t.Fatal(err)
		}
	}
	nw := NewNetwork(g, 1)
	hn := &echoNode{id: hub}
	nw.AddNode(hn)
	var leafNodes []*echoNode
	for _, l := range leaves {
		n := &echoNode{id: l}
		leafNodes = append(leafNodes, n)
		nw.AddNode(n)
	}
	sent := nw.Flood("lsa", hub, []byte("x"), leaves[0])
	if sent != 3 {
		t.Errorf("Flood sent %d, want 3 (one skipped)", sent)
	}
	nw.Engine.Run()
	if len(leafNodes[0].received) != 0 {
		t.Error("skipped neighbor received flood")
	}
	for _, n := range leafNodes[1:] {
		if len(n.received) != 1 {
			t.Errorf("leaf %v received %d, want 1", n.id, len(n.received))
		}
	}
}

func TestNetworkUpNeighbors(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	if got := nw.UpNeighbors(na.id); len(got) != 1 || got[0] != nb.id {
		t.Errorf("UpNeighbors = %v", got)
	}
	nw.FailLink(na.id, nb.id)
	if got := nw.UpNeighbors(na.id); len(got) != 0 {
		t.Errorf("UpNeighbors after failure = %v", got)
	}
}

func TestNetworkDuplicateNodePanics(t *testing.T) {
	nw, na, _ := twoNodeNet(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	nw.AddNode(&echoNode{id: na.id})
}

func TestNetworkPayloadIsolation(t *testing.T) {
	// The network must copy payloads so sender reuse of the buffer cannot
	// corrupt in-flight messages.
	nw, na, nb := twoNodeNet(t)
	buf := []byte("ping")
	nw.Send("ping", na.id, nb.id, buf)
	buf[0] = 'X'
	nw.Engine.Run()
	if nb.received[0] != "ping" {
		t.Errorf("payload mutated in flight: %q", nb.received[0])
	}
}

func TestRunToQuiescence(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	nw.Send("ping", na.id, nb.id, []byte("ping"))
	conv, ok := nw.RunToQuiescence(1 * Second)
	if !ok {
		t.Error("RunToQuiescence reported not quiescent")
	}
	// The last send is the pong at t=5ms.
	if conv != 5*Millisecond {
		t.Errorf("convergence time = %v, want 5ms", conv)
	}
}

func TestNodesSorted(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	nodes := nw.Nodes()
	if len(nodes) != 2 || nodes[0].ID() != na.id || nodes[1].ID() != nb.id {
		t.Errorf("Nodes() order wrong: %v %v", nodes[0].ID(), nodes[1].ID())
	}
	if nw.Node(na.id) != na || nw.Node(99) != nil {
		t.Error("Node lookup wrong")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		nw, na, nb := twoNodeNet(t)
		for i := 0; i < 10; i++ {
			nw.Send("ping", na.id, nb.id, []byte("ping"))
		}
		nw.Engine.Run()
		return nw.Stats.MessagesSent, nw.Engine.Now()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", m1, t1, m2, t2)
	}
}

func TestTraceCallback(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	var lines []string
	nw.Trace = func(format string, args ...interface{}) {
		lines = append(lines, format)
	}
	nw.Send("ping", na.id, nb.id, []byte("ping"))
	nw.Engine.Run()
	if len(lines) == 0 {
		t.Error("trace produced no lines")
	}
}

func TestStatsKindsSorted(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	nw.Send("zeta", na.id, nb.id, []byte("x"))
	nw.Send("alpha", na.id, nb.id, []byte("x"))
	kinds := nw.Stats.KindsSorted()
	if len(kinds) != 2 || kinds[0] != "alpha" || kinds[1] != "zeta" {
		t.Errorf("KindsSorted = %v", kinds)
	}
}

func TestMaxQueuedPending(t *testing.T) {
	nw, na, nb := twoNodeNet(t)
	for i := 0; i < 5; i++ {
		nw.Send("ping", na.id, nb.id, []byte("p"))
	}
	if nw.Stats.MaxQueuedPending < 5 {
		t.Errorf("MaxQueuedPending = %d, want >= 5", nw.Stats.MaxQueuedPending)
	}
	if nw.LastSend() != 0 {
		t.Errorf("LastSend = %v, want 0 (all sends at t=0)", nw.LastSend())
	}
}

func TestSerializationDelayAndFIFO(t *testing.T) {
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	// 1ms propagation, 8000 bps: a 100-byte message takes 100ms to clock
	// out — serialization dominates.
	if err := g.AddLink(ad.Link{A: a, B: b, DelayMicros: int64(1 * Millisecond), BandwidthBps: 8000}); err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(g, 1)
	var arrivals []Time
	var order []byte
	nb := &recordNode{id: b, onRecv: func(p []byte, at Time) {
		arrivals = append(arrivals, at)
		order = append(order, p[0])
	}}
	nw.AddNode(&echoNode{id: a})
	nw.AddNode(nb)
	// A big message followed by a tiny one: without transmitter
	// bookkeeping the tiny one would overtake it.
	nw.Send("big", a, b, make([]byte, 100))
	nw.Send("tiny", a, b, []byte{9})
	nw.Engine.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// big: 100B*8/8000bps = 100ms tx + 1ms prop = 101ms.
	if arrivals[0] != 101*Millisecond {
		t.Errorf("big arrival = %v, want 101ms", arrivals[0])
	}
	// tiny: waits for transmitter until 100ms, + 1ms tx + 1ms prop = 102ms.
	if arrivals[1] != 102*Millisecond {
		t.Errorf("tiny arrival = %v, want 102ms", arrivals[1])
	}
	if order[0] != 0 || order[1] != 9 {
		t.Errorf("FIFO violated: order = %v", order)
	}
}

// bandwidthPair builds a two-node network whose link has 1ms propagation
// delay and an 8000 bps transmitter: a 100-byte message takes 100ms to clock
// out, so serialization dominates and transmitter state is observable.
func bandwidthPair(t *testing.T) (*Network, ad.ID, ad.ID) {
	t.Helper()
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: a, B: b, DelayMicros: int64(1 * Millisecond), BandwidthBps: 8000}); err != nil {
		t.Fatal(err)
	}
	return NewNetwork(g, 1), a, b
}

func TestFailLinkResetsTransmitterState(t *testing.T) {
	// Regression: FailLink must clear both directed busyUntil entries.
	// Before the fix, a message sent after fail+restore inherited the
	// serialization backlog of traffic queued before the failure and was
	// delayed by the stale busy-until time.
	nw, a, b := bandwidthPair(t)
	var arrivals []Time
	nw.AddNode(&recordNode{id: b, onRecv: func(p []byte, at Time) { arrivals = append(arrivals, at) }})
	nw.AddNode(&echoNode{id: a})
	// Two 100-byte messages at t=0 occupy the a->b transmitter until 200ms.
	nw.Send("m", a, b, make([]byte, 100))
	nw.Send("m", a, b, make([]byte, 100))
	nw.Engine.At(2*Millisecond, func() {
		if err := nw.FailLink(a, b); err != nil {
			t.Error(err)
		}
	})
	nw.Engine.At(3*Millisecond, func() {
		if err := nw.RestoreLink(a, b); err != nil {
			t.Error(err)
		}
	})
	nw.Engine.At(4*Millisecond, func() {
		// Post-restore the transmitter must be idle: 4ms + 100ms tx +
		// 1ms prop = 105ms, not 200ms backlog + 100ms + 1ms = 301ms.
		nw.Send("m", a, b, make([]byte, 100))
	})
	nw.Engine.Run()
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %v, want exactly the post-restore message", arrivals)
	}
	if arrivals[0] != 105*Millisecond {
		t.Errorf("post-restore arrival = %v, want 105ms (transmitter not reset)", arrivals[0])
	}
	// The two pre-failure messages were lost (epoch), not delivered late.
	if nw.Stats.MessagesDropped != 2 {
		t.Errorf("drops = %d, want 2 in-flight losses", nw.Stats.MessagesDropped)
	}
}

func TestLastSendIncludesSerialization(t *testing.T) {
	// Regression: Send used to record lastSend = Now() even though the
	// transmission finishes clocking out at start+tx, under-reporting
	// convergence time on bandwidth-limited links.
	nw, a, b := bandwidthPair(t)
	nw.AddNode(&echoNode{id: a})
	nw.AddNode(&recordNode{id: b, onRecv: func([]byte, Time) {}})
	nw.Send("m", a, b, make([]byte, 100)) // clocks out at 100ms
	nw.Send("m", a, b, make([]byte, 100)) // queued: clocks out at 200ms
	if nw.LastSend() != 200*Millisecond {
		t.Errorf("LastSend = %v, want 200ms (transmission completion)", nw.LastSend())
	}
	conv, ok := nw.RunToQuiescence(1 * Second)
	if !ok {
		t.Fatal("not quiescent")
	}
	if conv != 200*Millisecond {
		t.Errorf("convergence = %v, want 200ms", conv)
	}
}

func TestLastSendMonotoneAcrossLinks(t *testing.T) {
	// A later quick send on a fast link must not regress the convergence
	// marker below an earlier long transmission still clocking out.
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Stub, ad.Campus)
	b := g.AddAD("b", ad.Stub, ad.Campus)
	c := g.AddAD("c", ad.Stub, ad.Campus)
	if err := g.AddLink(ad.Link{A: a, B: b, DelayMicros: int64(Millisecond), BandwidthBps: 8000}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(ad.Link{A: a, B: c, DelayMicros: int64(Millisecond)}); err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(g, 1)
	nw.Send("slow", a, b, make([]byte, 100)) // clocks out at 100ms
	nw.Send("fast", a, c, []byte("x"))       // clocks out immediately
	if nw.LastSend() != 100*Millisecond {
		t.Errorf("LastSend = %v, want 100ms (must not regress)", nw.LastSend())
	}
}

func TestFIFOUnderSerializationManyMessages(t *testing.T) {
	// Mixed-size back-to-back messages must arrive in send order with
	// cumulative serialization delays.
	nw, a, b := bandwidthPair(t)
	var order []byte
	var arrivals []Time
	nw.AddNode(&echoNode{id: a})
	nw.AddNode(&recordNode{id: b, onRecv: func(p []byte, at Time) {
		order = append(order, p[len(p)-1])
		arrivals = append(arrivals, at)
	}})
	nw.Send("m", a, b, append(make([]byte, 49), 1))  // 50B: tx 50ms
	nw.Send("m", a, b, append(make([]byte, 9), 2))   // 10B: tx 10ms
	nw.Send("m", a, b, append(make([]byte, 199), 3)) // 200B: tx 200ms
	nw.Send("m", a, b, []byte{4})                    // 1B: tx 1ms
	nw.Engine.Run()
	wantOrder := []byte{1, 2, 3, 4}
	wantAt := []Time{51 * Millisecond, 61 * Millisecond, 261 * Millisecond, 262 * Millisecond}
	if len(order) != 4 {
		t.Fatalf("delivered %d messages", len(order))
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Errorf("delivery %d = message %d, want %d (FIFO violated)", i, order[i], wantOrder[i])
		}
		if arrivals[i] != wantAt[i] {
			t.Errorf("delivery %d at %v, want %v", i, arrivals[i], wantAt[i])
		}
	}
}

func TestInFlightLossOnFailFastRestoreEpoch(t *testing.T) {
	// Epoch semantics on a bandwidth-limited link: everything in flight or
	// queued at the failed transmitter is lost even when the link comes
	// back before the scheduled delivery times, while traffic sent after
	// the restore flows normally.
	nw, a, b := bandwidthPair(t)
	var got []byte
	nw.AddNode(&echoNode{id: a})
	nw.AddNode(&recordNode{id: b, onRecv: func(p []byte, at Time) { got = append(got, p[0]) }})
	nw.Send("m", a, b, append(make([]byte, 99), 1)) // delivery at 101ms
	nw.Send("m", a, b, append(make([]byte, 99), 2)) // delivery at 201ms
	nw.Engine.At(50*Millisecond, func() {
		nw.FailLink(a, b)
		nw.RestoreLink(a, b)
		nw.Send("m", a, b, []byte{3})
	})
	nw.Engine.Run()
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("delivered = %v, want only the post-restore message", got)
	}
	if nw.Stats.MessagesDropped != 2 {
		t.Errorf("drops = %d, want 2", nw.Stats.MessagesDropped)
	}
}

func TestEngineStepAfterStopInCallback(t *testing.T) {
	// A Stop() issued inside an event callback must not wedge a later
	// Step: Step clears the flag on entry exactly like RunUntil.
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.At(3, func() { ran++ })
	if !e.Step() {
		t.Fatal("first Step = false")
	}
	if !e.Step() {
		t.Fatal("Step after in-callback Stop = false")
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	// And a RunUntil after a stale Stop proceeds too.
	e.At(4, func() { ran++; e.Stop() })
	e.Run()
	if ran != 4 {
		t.Errorf("after Run ran = %d, want 4", ran)
	}
}

func TestPayloadBufferReuseIsolation(t *testing.T) {
	// Recycled payload buffers must never leak stale bytes into a later
	// delivery: every Receive sees exactly the bytes passed to Send.
	nw, na, nb := twoNodeNet(t)
	msgs := []string{"alpha", "be", "gamma-gamma", "x"}
	var got []string
	nb.received = nil
	recv := &recordNode{id: nb.id, onRecv: func(p []byte, at Time) {
		got = append(got, string(p))
	}}
	nw.nodes[nb.id] = recv // swap in a recorder for b
	for _, m := range msgs {
		nw.Send("m", na.id, nb.id, []byte(m))
		nw.Engine.Run()
	}
	if len(got) != len(msgs) {
		t.Fatalf("received %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range msgs {
		if got[i] != m {
			t.Errorf("message %d = %q, want %q (buffer reuse corruption)", i, got[i], m)
		}
	}
}

// recordNode records payload arrivals with timestamps.
type recordNode struct {
	id     ad.ID
	onRecv func(p []byte, at Time)
}

func (n *recordNode) ID() ad.ID                      { return n.id }
func (n *recordNode) Start(nw *Network)              {}
func (n *recordNode) LinkDown(nw *Network, nb ad.ID) {}
func (n *recordNode) LinkUp(nw *Network, nb ad.ID)   {}
func (n *recordNode) Receive(nw *Network, from ad.ID, payload []byte) {
	n.onRecv(payload, nw.Now())
}
