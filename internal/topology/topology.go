// Package topology builds AD-level internet topologies matching the model of
// Breslau & Estrin (SIGCOMM 1990) §2.1: a hierarchy of backbone, regional,
// metro, and campus networks, augmented with lateral links between peers and
// bypass links that skip hierarchy levels.
//
// The package provides a deterministic seeded generator, the paper's exact
// Figure 1 example topology, and DOT/JSON exporters.
package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/ad"
)

// Config parameterizes the generator. Zero fields are normalized to a small
// default internet. All randomness derives from Seed, so equal configs
// produce identical topologies.
type Config struct {
	Seed int64

	// Backbones is the number of long-haul backbone ADs (>= 1). All
	// backbones are interconnected in a ring plus random chords.
	Backbones int
	// RegionalsPerBackbone is the number of regional ADs homed on each
	// backbone.
	RegionalsPerBackbone int
	// MetrosPerRegional is the number of metro ADs per regional. Zero
	// attaches campuses directly to regionals (a 3-level hierarchy).
	MetrosPerRegional int
	// CampusesPerParent is the number of campus (stub) ADs per lowest
	// transit AD.
	CampusesPerParent int

	// LateralProb is the probability that a pair of same-level ADs with a
	// common parent is joined by a lateral link. Lateral links between
	// regionals on different backbones are also generated at this rate.
	LateralProb float64
	// BypassProb is the probability that a campus gets a bypass link
	// directly to a random backbone.
	BypassProb float64
	// MultihomedProb is the probability that a campus is multi-homed to a
	// second parent and classified MultihomedStub (it still disallows
	// transit; see paper §2.1).
	MultihomedProb float64
	// HybridProb is the probability that a metro or regional is a Hybrid
	// (limited transit) AD instead of a full Transit AD.
	HybridProb float64

	// BackboneChords adds this many random extra backbone-backbone links
	// beyond the ring (ignored when Backbones < 4).
	BackboneChords int
}

// Normalize fills zero fields with defaults: 2 backbones, 2 regionals each,
// no metro level, 3 campuses per regional — a 16-AD internet resembling
// Figure 1 in shape.
func (c Config) Normalize() Config {
	if c.Backbones < 1 {
		c.Backbones = 2
	}
	if c.RegionalsPerBackbone < 1 {
		c.RegionalsPerBackbone = 2
	}
	if c.MetrosPerRegional < 0 {
		c.MetrosPerRegional = 0
	}
	if c.CampusesPerParent < 1 {
		c.CampusesPerParent = 3
	}
	clamp := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp(&c.LateralProb)
	clamp(&c.BypassProb)
	clamp(&c.MultihomedProb)
	clamp(&c.HybridProb)
	return c
}

// Topology is a generated internet: the AD graph plus structural metadata
// used by experiments (hierarchy parents and per-level membership).
type Topology struct {
	Graph *ad.Graph
	// Parent maps each non-backbone AD to its primary hierarchical
	// parent.
	Parent map[ad.ID]ad.ID
	// ByLevel lists ADs at each level, in creation order.
	ByLevel map[ad.Level][]ad.ID
}

// delay returns a plausible one-way propagation delay (µs) for a link class:
// long-haul links are slower than local attachments.
func delay(class ad.LinkClass, level ad.Level) int64 {
	switch {
	case level == ad.Backbone:
		return 20000 // 20ms long haul
	case class == ad.Bypass:
		return 15000
	case level == ad.Regional:
		return 8000
	default:
		return 2000
	}
}

// bandwidth returns a period-plausible link rate (bps) for a link class:
// T3 backbones, T1 regional attachments and bypass circuits, Ethernet-class
// campus links — the circuit mix of the paper's late-1980s internet.
func bandwidth(class ad.LinkClass, level ad.Level) int64 {
	switch {
	case level == ad.Backbone:
		return 45_000_000 // T3
	case class == ad.Bypass:
		return 1_544_000 // T1
	case level == ad.Regional:
		return 1_544_000 // T1
	default:
		return 10_000_000 // campus Ethernet attach
	}
}

// Generate builds a topology from config c. The result is always connected.
func Generate(c Config) *Topology {
	c = c.Normalize()
	rng := rand.New(rand.NewSource(c.Seed))
	g := ad.NewGraph()
	topo := &Topology{
		Graph:   g,
		Parent:  make(map[ad.ID]ad.ID),
		ByLevel: make(map[ad.Level][]ad.ID),
	}

	addLink := func(a, b ad.ID, class ad.LinkClass, level ad.Level) {
		if a == b || g.HasLink(a, b) {
			return
		}
		cost := uint32(1)
		if class == ad.Lateral {
			cost = 2
		}
		if class == ad.Bypass {
			cost = 3
		}
		// Endpoints are validated at creation; errors are impossible here.
		if err := g.AddLink(ad.Link{A: a, B: b, Class: class, DelayMicros: delay(class, level), BandwidthBps: bandwidth(class, level), Cost: cost}); err != nil {
			panic(fmt.Sprintf("topology: internal link error: %v", err))
		}
	}

	// Backbones: ring + chords.
	var backbones []ad.ID
	for i := 0; i < c.Backbones; i++ {
		id := g.AddAD(fmt.Sprintf("bb%d", i), ad.Transit, ad.Backbone)
		backbones = append(backbones, id)
		topo.ByLevel[ad.Backbone] = append(topo.ByLevel[ad.Backbone], id)
	}
	for i := 1; i < len(backbones); i++ {
		addLink(backbones[i-1], backbones[i], ad.Hierarchical, ad.Backbone)
	}
	if len(backbones) > 2 {
		addLink(backbones[len(backbones)-1], backbones[0], ad.Hierarchical, ad.Backbone)
	}
	if len(backbones) >= 4 {
		for i := 0; i < c.BackboneChords; i++ {
			a := backbones[rng.Intn(len(backbones))]
			b := backbones[rng.Intn(len(backbones))]
			addLink(a, b, ad.Hierarchical, ad.Backbone)
		}
	}

	transitClass := func() ad.Class {
		if rng.Float64() < c.HybridProb {
			return ad.Hybrid
		}
		return ad.Transit
	}

	// Regionals.
	var regionals []ad.ID
	for bi, bb := range backbones {
		for r := 0; r < c.RegionalsPerBackbone; r++ {
			id := g.AddAD(fmt.Sprintf("reg%d.%d", bi, r), transitClass(), ad.Regional)
			regionals = append(regionals, id)
			topo.ByLevel[ad.Regional] = append(topo.ByLevel[ad.Regional], id)
			topo.Parent[id] = bb
			addLink(id, bb, ad.Hierarchical, ad.Regional)
		}
	}
	// Lateral links among sibling regionals and across backbones.
	for i := 0; i < len(regionals); i++ {
		for j := i + 1; j < len(regionals); j++ {
			if rng.Float64() < c.LateralProb {
				addLink(regionals[i], regionals[j], ad.Lateral, ad.Regional)
			}
		}
	}

	// Metros (optional level).
	lowestTransit := regionals
	if c.MetrosPerRegional > 0 {
		var metros []ad.ID
		for ri, reg := range regionals {
			var sibs []ad.ID
			for m := 0; m < c.MetrosPerRegional; m++ {
				id := g.AddAD(fmt.Sprintf("met%d.%d", ri, m), transitClass(), ad.Metro)
				metros = append(metros, id)
				sibs = append(sibs, id)
				topo.ByLevel[ad.Metro] = append(topo.ByLevel[ad.Metro], id)
				topo.Parent[id] = reg
				addLink(id, reg, ad.Hierarchical, ad.Metro)
			}
			for i := 0; i < len(sibs); i++ {
				for j := i + 1; j < len(sibs); j++ {
					if rng.Float64() < c.LateralProb {
						addLink(sibs[i], sibs[j], ad.Lateral, ad.Metro)
					}
				}
			}
		}
		lowestTransit = metros
	}

	// Campuses (stubs).
	for pi, parent := range lowestTransit {
		var sibs []ad.ID
		for s := 0; s < c.CampusesPerParent; s++ {
			class := ad.Stub
			multihomed := rng.Float64() < c.MultihomedProb && len(lowestTransit) > 1
			if multihomed {
				class = ad.MultihomedStub
			}
			id := g.AddAD(fmt.Sprintf("cam%d.%d", pi, s), class, ad.Campus)
			sibs = append(sibs, id)
			topo.ByLevel[ad.Campus] = append(topo.ByLevel[ad.Campus], id)
			topo.Parent[id] = parent
			addLink(id, parent, ad.Hierarchical, ad.Campus)
			if multihomed {
				// Second home on a different lowest-transit AD.
				for tries := 0; tries < 8; tries++ {
					second := lowestTransit[rng.Intn(len(lowestTransit))]
					if second != parent && !g.HasLink(id, second) {
						addLink(id, second, ad.Hierarchical, ad.Campus)
						break
					}
				}
			}
			if rng.Float64() < c.BypassProb {
				bb := backbones[rng.Intn(len(backbones))]
				addLink(id, bb, ad.Bypass, ad.Campus)
			}
		}
		// Lateral links between sibling campuses.
		for i := 0; i < len(sibs); i++ {
			for j := i + 1; j < len(sibs); j++ {
				if rng.Float64() < c.LateralProb {
					addLink(sibs[i], sibs[j], ad.Lateral, ad.Campus)
				}
			}
		}
	}
	return topo
}

// Stats summarizes a topology for validation and reporting.
type Stats struct {
	ADs, Links               int
	ByClass                  map[ad.Class]int
	ByLevel                  map[ad.Level]int
	ByLinkClass              map[ad.LinkClass]int
	Connected, Tree          bool
	MinDegree, MaxDegree     int
	MultihomedWithTwoPlus    int
	LateralAndBypassFraction float64
	AvgDegree                float64
}

// ComputeStats analyses graph g.
func ComputeStats(g *ad.Graph) Stats {
	s := Stats{
		ByClass:     make(map[ad.Class]int),
		ByLevel:     make(map[ad.Level]int),
		ByLinkClass: make(map[ad.LinkClass]int),
		MinDegree:   1 << 30,
	}
	s.ADs = g.NumADs()
	s.Links = g.NumLinks()
	s.Connected = g.Connected()
	s.Tree = g.IsTree()
	degSum := 0
	for _, info := range g.ADs() {
		s.ByClass[info.Class]++
		s.ByLevel[info.Level]++
		d := g.Degree(info.ID)
		degSum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if info.Class == ad.MultihomedStub && d >= 2 {
			s.MultihomedWithTwoPlus++
		}
	}
	nonHier := 0
	for _, l := range g.Links() {
		s.ByLinkClass[l.Class]++
		if l.Class != ad.Hierarchical {
			nonHier++
		}
	}
	if s.Links > 0 {
		s.LateralAndBypassFraction = float64(nonHier) / float64(s.Links)
	}
	if s.ADs > 0 {
		s.AvgDegree = float64(degSum) / float64(s.ADs)
	}
	if s.ADs == 0 {
		s.MinDegree = 0
	}
	return s
}
