package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ad"
)

// WriteDOT renders the graph in Graphviz DOT format: one node per AD
// (shape by class) and one edge per link (style by link class).
func WriteDOT(w io.Writer, g *ad.Graph) error {
	if _, err := fmt.Fprintln(w, "graph internet {"); err != nil {
		return err
	}
	for _, info := range g.ADs() {
		shape := "ellipse"
		switch info.Level {
		case ad.Backbone:
			shape = "box"
		case ad.Regional:
			shape = "hexagon"
		case ad.Metro:
			shape = "diamond"
		}
		style := ""
		if info.Class == ad.MultihomedStub {
			style = ", peripheries=2"
		}
		if _, err := fmt.Fprintf(w, "  %d [label=%q, shape=%s%s];\n", info.ID, info.Name, shape, style); err != nil {
			return err
		}
	}
	for _, l := range g.Links() {
		style := "solid"
		switch l.Class {
		case ad.Lateral:
			style = "dotted"
		case ad.Bypass:
			style = "dashed"
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d [style=%s];\n", l.A, l.B, style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// jsonAD and jsonLink are the stable JSON wire forms of a topology.
type jsonAD struct {
	ID    uint32 `json:"id"`
	Name  string `json:"name"`
	Class string `json:"class"`
	Level string `json:"level"`
}

type jsonLink struct {
	A            uint32 `json:"a"`
	B            uint32 `json:"b"`
	Class        string `json:"class"`
	DelayMicros  int64  `json:"delay_micros"`
	BandwidthBps int64  `json:"bandwidth_bps,omitempty"`
	Cost         uint32 `json:"cost"`
}

type jsonTopology struct {
	ADs   []jsonAD   `json:"ads"`
	Links []jsonLink `json:"links"`
}

// WriteJSON serializes the graph as JSON.
func WriteJSON(w io.Writer, g *ad.Graph) error {
	var jt jsonTopology
	for _, info := range g.ADs() {
		jt.ADs = append(jt.ADs, jsonAD{
			ID:    uint32(info.ID),
			Name:  info.Name,
			Class: info.Class.String(),
			Level: info.Level.String(),
		})
	}
	for _, l := range g.Links() {
		jt.Links = append(jt.Links, jsonLink{
			A: uint32(l.A), B: uint32(l.B),
			Class:        l.Class.String(),
			DelayMicros:  l.DelayMicros,
			BandwidthBps: l.BandwidthBps,
			Cost:         l.Cost,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

func parseClass(s string) (ad.Class, error) {
	for _, c := range []ad.Class{ad.Stub, ad.MultihomedStub, ad.Transit, ad.Hybrid} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown AD class %q", s)
}

func parseLevel(s string) (ad.Level, error) {
	for _, l := range []ad.Level{ad.Backbone, ad.Regional, ad.Metro, ad.Campus} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown level %q", s)
}

func parseLinkClass(s string) (ad.LinkClass, error) {
	for _, lc := range []ad.LinkClass{ad.Hierarchical, ad.Lateral, ad.Bypass} {
		if lc.String() == s {
			return lc, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown link class %q", s)
}

// ReadJSON parses a topology previously written by WriteJSON.
func ReadJSON(r io.Reader) (*ad.Graph, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: decoding JSON: %w", err)
	}
	g := ad.NewGraph()
	for _, ja := range jt.ADs {
		class, err := parseClass(ja.Class)
		if err != nil {
			return nil, err
		}
		level, err := parseLevel(ja.Level)
		if err != nil {
			return nil, err
		}
		if err := g.AddADWithID(ad.ID(ja.ID), ja.Name, class, level); err != nil {
			return nil, err
		}
	}
	for _, jl := range jt.Links {
		class, err := parseLinkClass(jl.Class)
		if err != nil {
			return nil, err
		}
		err = g.AddLink(ad.Link{
			A: ad.ID(jl.A), B: ad.ID(jl.B),
			Class:        class,
			DelayMicros:  jl.DelayMicros,
			BandwidthBps: jl.BandwidthBps,
			Cost:         jl.Cost,
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
