package topology_test

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/topology"
)

// ExampleGenerate builds a small internet in the paper's §2.1 shape and
// reports its structure.
func ExampleGenerate() {
	topo := topology.Generate(topology.Config{
		Seed:                 7,
		Backbones:            2,
		RegionalsPerBackbone: 2,
		CampusesPerParent:    2,
	})
	s := topology.ComputeStats(topo.Graph)
	fmt.Println("ADs:", s.ADs)
	fmt.Println("connected:", s.Connected)
	fmt.Println("backbones:", s.ByLevel[ad.Backbone])
	fmt.Println("campuses:", s.ByLevel[ad.Campus])
	// Output:
	// ADs: 14
	// connected: true
	// backbones: 2
	// campuses: 8
}

// ExampleFigure1 reconstructs the paper's example internet.
func ExampleFigure1() {
	topo := topology.Figure1()
	s := topology.ComputeStats(topo.Graph)
	fmt.Println("lateral links:", s.ByLinkClass[ad.Lateral])
	fmt.Println("bypass links:", s.ByLinkClass[ad.Bypass])
	fmt.Println("multi-homed stubs:", s.ByClass[ad.MultihomedStub])
	// Output:
	// lateral links: 2
	// bypass links: 1
	// multi-homed stubs: 1
}
