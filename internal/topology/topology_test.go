package topology

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ad"
)

func TestGenerateDefaultsConnected(t *testing.T) {
	topo := Generate(Config{Seed: 1})
	s := ComputeStats(topo.Graph)
	if !s.Connected {
		t.Fatal("default topology not connected")
	}
	// 2 backbones + 4 regionals + 12 campuses.
	if s.ADs != 18 {
		t.Errorf("ADs = %d, want 18", s.ADs)
	}
	if s.ByLevel[ad.Backbone] != 2 || s.ByLevel[ad.Regional] != 4 || s.ByLevel[ad.Campus] != 12 {
		t.Errorf("level counts = %v", s.ByLevel)
	}
	if s.ByLevel[ad.Metro] != 0 {
		t.Errorf("unexpected metro ADs: %d", s.ByLevel[ad.Metro])
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, LateralProb: 0.3, BypassProb: 0.2, MultihomedProb: 0.2, HybridProb: 0.3}
	a := Generate(cfg)
	b := Generate(cfg)
	la, lb := a.Graph.Links(), b.Graph.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
	for _, ia := range a.Graph.ADs() {
		ib, ok := b.Graph.AD(ia.ID)
		if !ok || ia != ib {
			t.Errorf("AD %v differs: %+v vs %+v", ia.ID, ia, ib)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := Config{LateralProb: 0.4, BypassProb: 0.3}
	a := Generate(Config{Seed: 1, LateralProb: cfg.LateralProb, BypassProb: cfg.BypassProb})
	b := Generate(Config{Seed: 2, LateralProb: cfg.LateralProb, BypassProb: cfg.BypassProb})
	if a.Graph.NumLinks() == b.Graph.NumLinks() {
		// Same count is possible but identical link sets are unlikely;
		// compare the sorted link lists.
		la, lb := a.Graph.Links(), b.Graph.Links()
		same := true
		for i := range la {
			if la[i] != lb[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestGenerateMetroLevel(t *testing.T) {
	topo := Generate(Config{Seed: 3, Backbones: 1, RegionalsPerBackbone: 2, MetrosPerRegional: 2, CampusesPerParent: 2})
	s := ComputeStats(topo.Graph)
	if s.ByLevel[ad.Metro] != 4 {
		t.Errorf("metros = %d, want 4", s.ByLevel[ad.Metro])
	}
	if s.ByLevel[ad.Campus] != 8 {
		t.Errorf("campuses = %d, want 8", s.ByLevel[ad.Campus])
	}
	if !s.Connected {
		t.Error("metro topology not connected")
	}
	// Every campus parent must be a metro.
	for _, c := range topo.ByLevel[ad.Campus] {
		p := topo.Parent[c]
		info, _ := topo.Graph.AD(p)
		if info.Level != ad.Metro {
			t.Errorf("campus %v parented to %v (%v), want metro", c, p, info.Level)
		}
	}
}

func TestGenerateMultihomed(t *testing.T) {
	topo := Generate(Config{Seed: 5, MultihomedProb: 1})
	found := 0
	for _, info := range topo.Graph.ADs() {
		if info.Class == ad.MultihomedStub {
			found++
			if topo.Graph.Degree(info.ID) < 2 {
				t.Errorf("multihomed stub %v has degree %d", info.ID, topo.Graph.Degree(info.ID))
			}
		}
	}
	if found == 0 {
		t.Error("MultihomedProb=1 produced no multihomed stubs")
	}
}

func TestGenerateBypass(t *testing.T) {
	topo := Generate(Config{Seed: 6, BypassProb: 1})
	s := ComputeStats(topo.Graph)
	if s.ByLinkClass[ad.Bypass] == 0 {
		t.Error("BypassProb=1 produced no bypass links")
	}
	// Bypass links must terminate on a backbone.
	for _, l := range topo.Graph.Links() {
		if l.Class != ad.Bypass {
			continue
		}
		ia, _ := topo.Graph.AD(l.A)
		ib, _ := topo.Graph.AD(l.B)
		if ia.Level != ad.Backbone && ib.Level != ad.Backbone {
			t.Errorf("bypass link %v-%v touches no backbone", l.A, l.B)
		}
	}
}

func TestGenerateHybrid(t *testing.T) {
	topo := Generate(Config{Seed: 7, HybridProb: 1})
	s := ComputeStats(topo.Graph)
	if s.ByClass[ad.Hybrid] == 0 {
		t.Error("HybridProb=1 produced no hybrid ADs")
	}
	// Backbones are never hybrid.
	for _, bb := range topo.ByLevel[ad.Backbone] {
		info, _ := topo.Graph.AD(bb)
		if info.Class != ad.Transit {
			t.Errorf("backbone %v class = %v, want transit", bb, info.Class)
		}
	}
}

func TestGenerateScalesUp(t *testing.T) {
	topo := Generate(Config{Seed: 8, Backbones: 4, RegionalsPerBackbone: 4, MetrosPerRegional: 2, CampusesPerParent: 4, LateralProb: 0.1, BypassProb: 0.05, BackboneChords: 2})
	s := ComputeStats(topo.Graph)
	want := 4 + 16 + 32 + 128
	if s.ADs != want {
		t.Errorf("ADs = %d, want %d", s.ADs, want)
	}
	if !s.Connected {
		t.Error("large topology not connected")
	}
	if s.MinDegree < 1 {
		t.Error("isolated AD generated")
	}
}

func TestFigure1Invariants(t *testing.T) {
	topo := Figure1()
	g := topo.Graph
	s := ComputeStats(g)
	if !s.Connected {
		t.Fatal("Figure 1 not connected")
	}
	if s.Tree {
		t.Error("Figure 1 must contain cycles (lateral/bypass links)")
	}
	if s.ByLevel[ad.Backbone] != 2 {
		t.Errorf("backbones = %d, want 2", s.ByLevel[ad.Backbone])
	}
	if s.ByLevel[ad.Regional] != 3 {
		t.Errorf("regionals = %d, want 3", s.ByLevel[ad.Regional])
	}
	if s.ByLevel[ad.Campus] != 5 {
		t.Errorf("campuses = %d, want 5", s.ByLevel[ad.Campus])
	}
	// The figure legend requires all three link classes present.
	if s.ByLinkClass[ad.Lateral] != 2 {
		t.Errorf("lateral links = %d, want 2", s.ByLinkClass[ad.Lateral])
	}
	if s.ByLinkClass[ad.Bypass] != 1 {
		t.Errorf("bypass links = %d, want 1", s.ByLinkClass[ad.Bypass])
	}
	if s.ByClass[ad.MultihomedStub] != 1 {
		t.Errorf("multihomed stubs = %d, want 1", s.ByClass[ad.MultihomedStub])
	}
	if s.MultihomedWithTwoPlus != 1 {
		t.Error("multihomed stub lacks two connections")
	}
	// Determinism: building twice gives identical graphs.
	g2 := Figure1().Graph
	la, lb := g.Links(), g2.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("Figure1 nondeterministic at link %d", i)
		}
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(ad.NewGraph())
	if s.ADs != 0 || s.Links != 0 || s.MinDegree != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, Figure1().Graph); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph internet {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT output not well-formed")
	}
	if !strings.Contains(out, "style=dotted") {
		t.Error("lateral links not rendered dotted")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("bypass links not rendered dashed")
	}
	if !strings.Contains(out, "backbone-east") {
		t.Error("AD names missing from DOT")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := Figure1().Graph
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumADs() != g.NumADs() || got.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", got.NumADs(), got.NumLinks(), g.NumADs(), g.NumLinks())
	}
	for _, info := range g.ADs() {
		gi, ok := got.AD(info.ID)
		if !ok || gi != info {
			t.Errorf("AD %v mismatch: %+v vs %+v", info.ID, gi, info)
		}
	}
	la, lb := g.Links(), got.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("link %d mismatch: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"ads":[{"id":1,"name":"x","class":"nope","level":"campus"}]}`,
		`{"ads":[{"id":1,"name":"x","class":"stub","level":"nope"}]}`,
		`{"ads":[{"id":1,"name":"x","class":"stub","level":"campus"}],"links":[{"a":1,"b":2,"class":"hierarchical"}]}`,
		`{"ads":[{"id":1,"name":"x","class":"stub","level":"campus"},{"id":2,"name":"y","class":"stub","level":"campus"}],"links":[{"a":1,"b":2,"class":"nope"}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{LateralProb: -1, BypassProb: 7}.Normalize()
	if c.LateralProb != 0 || c.BypassProb != 1 {
		t.Errorf("probs not clamped: %+v", c)
	}
	if c.Backbones != 2 || c.RegionalsPerBackbone != 2 || c.CampusesPerParent != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
