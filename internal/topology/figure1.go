package topology

import (
	"fmt"

	"repro/internal/ad"
)

// Figure1 constructs the paper's Figure 1 "Example Internet Topology": a
// two-backbone hierarchy with regional and campus networks, augmented with
// one regional-regional lateral link, one campus-campus lateral link, one
// campus-to-backbone bypass link, and one multi-homed stub campus.
//
// The published figure is a schematic; this is a faithful reconstruction of
// every structural feature its legend names (hierarchical, lateral, and
// bypass links across backbone/regional/campus levels). Experiment F1
// validates its invariants.
func Figure1() *Topology {
	g := ad.NewGraph()
	topo := &Topology{
		Graph:   g,
		Parent:  make(map[ad.ID]ad.ID),
		ByLevel: make(map[ad.Level][]ad.ID),
	}
	add := func(name string, class ad.Class, level ad.Level) ad.ID {
		id := g.AddAD(name, class, level)
		topo.ByLevel[level] = append(topo.ByLevel[level], id)
		return id
	}
	link := func(a, b ad.ID, class ad.LinkClass, level ad.Level) {
		if err := g.AddLink(ad.Link{A: a, B: b, Class: class, DelayMicros: delay(class, level), BandwidthBps: bandwidth(class, level), Cost: 1}); err != nil {
			panic(fmt.Sprintf("topology: figure1: %v", err))
		}
	}

	// Two interconnected long-haul backbones.
	b1 := add("backbone-east", ad.Transit, ad.Backbone)
	b2 := add("backbone-west", ad.Transit, ad.Backbone)
	link(b1, b2, ad.Hierarchical, ad.Backbone)

	// Regionals: two on the east backbone, one on the west.
	r1 := add("regional-1", ad.Transit, ad.Regional)
	r2 := add("regional-2", ad.Transit, ad.Regional)
	r3 := add("regional-3", ad.Transit, ad.Regional)
	topo.Parent[r1] = b1
	topo.Parent[r2] = b1
	topo.Parent[r3] = b2
	link(r1, b1, ad.Hierarchical, ad.Regional)
	link(r2, b1, ad.Hierarchical, ad.Regional)
	link(r3, b2, ad.Hierarchical, ad.Regional)
	// Lateral link between regionals on different backbones.
	link(r2, r3, ad.Lateral, ad.Regional)

	// Campuses.
	c1 := add("campus-1", ad.Stub, ad.Campus)
	c2 := add("campus-2", ad.Stub, ad.Campus)
	c3 := add("campus-3", ad.Stub, ad.Campus)
	c4 := add("campus-4", ad.Stub, ad.Campus)
	c5 := add("campus-5", ad.MultihomedStub, ad.Campus)
	topo.Parent[c1] = r1
	topo.Parent[c2] = r1
	topo.Parent[c3] = r2
	topo.Parent[c4] = r3
	topo.Parent[c5] = r3
	link(c1, r1, ad.Hierarchical, ad.Campus)
	link(c2, r1, ad.Hierarchical, ad.Campus)
	link(c3, r2, ad.Hierarchical, ad.Campus)
	link(c4, r3, ad.Hierarchical, ad.Campus)
	link(c5, r3, ad.Hierarchical, ad.Campus)
	// Lateral link between campuses under different regionals.
	link(c2, c3, ad.Lateral, ad.Campus)
	// Bypass link: campus directly onto a backbone.
	link(c4, b1, ad.Bypass, ad.Campus)
	// The multi-homed stub's second home.
	link(c5, r2, ad.Hierarchical, ad.Campus)

	return topo
}
