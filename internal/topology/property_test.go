package topology

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ad"
)

// TestPropertyGeneratorInvariants sweeps many random configurations and
// validates the structural invariants of the paper's topology model.
func TestPropertyGeneratorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			Seed:                 int64(trial),
			Backbones:            1 + rng.Intn(4),
			RegionalsPerBackbone: 1 + rng.Intn(4),
			MetrosPerRegional:    rng.Intn(3),
			CampusesPerParent:    1 + rng.Intn(4),
			LateralProb:          rng.Float64() * 0.6,
			BypassProb:           rng.Float64() * 0.4,
			MultihomedProb:       rng.Float64() * 0.4,
			HybridProb:           rng.Float64() * 0.5,
			BackboneChords:       rng.Intn(3),
		}
		topo := Generate(cfg)
		g := topo.Graph
		s := ComputeStats(g)
		if !s.Connected {
			t.Fatalf("trial %d: disconnected topology (%+v)", trial, cfg)
		}
		if s.MinDegree < 1 {
			t.Fatalf("trial %d: isolated AD", trial)
		}
		for _, info := range g.ADs() {
			switch info.Level {
			case ad.Backbone:
				// Backbones are always full transit.
				if info.Class != ad.Transit {
					t.Fatalf("trial %d: backbone %v class %v", trial, info.ID, info.Class)
				}
			case ad.Campus:
				// Campuses are stubs (possibly multi-homed).
				if info.Class != ad.Stub && info.Class != ad.MultihomedStub {
					t.Fatalf("trial %d: campus %v class %v", trial, info.ID, info.Class)
				}
				if info.Class == ad.MultihomedStub && g.Degree(info.ID) < 2 {
					t.Fatalf("trial %d: multihomed %v degree %d", trial, info.ID, g.Degree(info.ID))
				}
			default:
				// Regionals/metros are transit or hybrid.
				if info.Class != ad.Transit && info.Class != ad.Hybrid {
					t.Fatalf("trial %d: %v level %v class %v", trial, info.ID, info.Level, info.Class)
				}
			}
			// Every non-backbone AD has a hierarchy parent one level up
			// (or recorded in Parent for multi-homed second links).
			if info.Level != ad.Backbone {
				parent, ok := topo.Parent[info.ID]
				if !ok {
					t.Fatalf("trial %d: %v has no parent", trial, info.ID)
				}
				if !g.HasLink(info.ID, parent) {
					t.Fatalf("trial %d: %v not linked to parent %v", trial, info.ID, parent)
				}
			}
		}
		// Link class sanity: hierarchical links connect adjacent levels
		// (or two backbones); bypass links touch a backbone.
		for _, l := range g.Links() {
			ia, _ := g.AD(l.A)
			ib, _ := g.AD(l.B)
			switch l.Class {
			case ad.Bypass:
				if ia.Level != ad.Backbone && ib.Level != ad.Backbone {
					t.Fatalf("trial %d: bypass %v-%v touches no backbone", trial, l.A, l.B)
				}
			case ad.Lateral:
				if ia.Level != ib.Level {
					t.Fatalf("trial %d: lateral %v-%v across levels %v/%v", trial, l.A, l.B, ia.Level, ib.Level)
				}
			}
			if l.DelayMicros <= 0 {
				t.Fatalf("trial %d: non-positive delay on %v-%v", trial, l.A, l.B)
			}
			if l.Cost == 0 {
				t.Fatalf("trial %d: zero cost on %v-%v", trial, l.A, l.B)
			}
		}
	}
}

// TestPropertyJSONRoundTripRandom round-trips random generated topologies.
func TestPropertyJSONRoundTripRandom(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		topo := Generate(Config{
			Seed:           int64(trial * 3),
			LateralProb:    0.3,
			BypassProb:     0.2,
			MultihomedProb: 0.2,
			HybridProb:     0.3,
		})
		g := topo.Graph
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.NumADs() != g.NumADs() || got.NumLinks() != g.NumLinks() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		la, lb := g.Links(), got.Links()
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("trial %d: link %d mismatch", trial, i)
			}
		}
	}
}
