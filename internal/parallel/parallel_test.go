package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Normalize(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Normalize(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Normalize(-3) = %d", got)
	}
	if got := Normalize(7); got != 7 {
		t.Errorf("Normalize(7) = %d", got)
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 50
		counts := make([]int32, n)
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&counts[i], 1) }
		}
		Do(workers, tasks)
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoSerialPreservesOrder(t *testing.T) {
	var order []int
	var tasks []func()
	for i := 0; i < 10; i++ {
		i := i
		tasks = append(tasks, func() { order = append(order, i) })
	}
	Do(1, tasks)
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4, nil) // must not hang or panic
}
