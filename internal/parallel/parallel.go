// Package parallel provides the bounded worker pool used to fan independent
// deterministic tasks (experiments, protocol runs) across goroutines.
//
// Tasks must be mutually independent: each may only write state it owns
// (typically one slot of a results slice). Determinism then follows from the
// fixed task list — execution order does not matter, only the slot each task
// fills.
package parallel

import (
	"runtime"
	"sync"
)

// Normalize resolves a parallelism request: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func Normalize(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Do runs every task, using at most parallelism concurrent workers
// (Normalize applies). With one worker the tasks run inline, in order, on the
// calling goroutine — the serial path stays allocation- and goroutine-free.
func Do(parallelism int, tasks []func()) {
	parallelism = Normalize(parallelism)
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan func())
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}
