// Package repro's benchmark harness: one benchmark per reproduced table and
// figure (see DESIGN.md's per-experiment index), plus microbenchmarks for
// the hot substrates (wire encoding, route synthesis, flooding).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ordering"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/orwg"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/routeserver/ha"
	"repro/internal/routeserver/plan"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/wire"
)

const benchSeed = 42

// sink prevents dead-code elimination of table generation.
var sink int

// Table and figure benchmarks: each iteration regenerates the full
// experiment, so ns/op is the cost of reproducing that result.

func BenchmarkTable1DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.Table1DesignSpace(benchSeed).Rows)
	}
}

func BenchmarkFigure1Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.Figure1Topology().Rows)
	}
}

func BenchmarkE1RouteAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E1RouteAvailability(benchSeed).Rows)
	}
}

func BenchmarkE2Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E2Convergence(benchSeed).Rows)
	}
}

func BenchmarkE3SpanningTreeReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E3SpanningTreeReplication(benchSeed).Rows)
	}
}

func BenchmarkE4QOSScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E4QOSScaling(benchSeed).Rows)
	}
}

func BenchmarkE5SetupVsHandle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E5SetupVsHandle(benchSeed).Rows)
	}
}

func BenchmarkE6EGPTopologyRestriction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E6EGPTopologyRestriction(benchSeed).Rows)
	}
}

func BenchmarkE7SynthesisStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E7SynthesisStrategies(benchSeed).Rows)
	}
}

func BenchmarkE8PolicyGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E8PolicyGranularity(benchSeed).Rows)
	}
}

func BenchmarkE9MessageScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E9MessageScaling(benchSeed).Rows)
	}
}

func BenchmarkE10OrderingSatisfiability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E10OrderingSatisfiability(benchSeed).Rows)
	}
}

func BenchmarkE11FilterDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E11FilterDiscovery(benchSeed).Rows)
	}
}

func BenchmarkE12IDRPMultiRoute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E12IDRPMultiRoute(benchSeed).Rows)
	}
}

func BenchmarkE13TimeOfDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E13TimeOfDay(benchSeed).Rows)
	}
}

func BenchmarkE14PolicyChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E14PolicyChange(benchSeed).Rows)
	}
}

func BenchmarkE15LogicalClusterCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E15LogicalClusterCost(benchSeed).Rows)
	}
}

func BenchmarkE16DatabaseDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E16DatabaseDistribution(benchSeed).Rows)
	}
}

func BenchmarkE17SetupAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E17SetupAmortization(benchSeed).Rows)
	}
}

func BenchmarkE18PathStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E18PathStretch(benchSeed).Rows)
	}
}

func BenchmarkE19MultihomedStubs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E19MultihomedStubs(benchSeed).Rows)
	}
}

func BenchmarkE21StateLifecycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.E21StateLifecycles(benchSeed).Rows)
	}
}

// BenchmarkE20RouteServer compares the caching/coalescing route server
// against naive per-request synthesis on a Zipf-skewed workload, then
// emits the measurements as BENCH_routeserver.json (machine-readable;
// consumed by the bench-smoke CI step). Wall-clock QPS is hardware- and
// scheduling-dependent; the synthesis-reduction ratio is deterministic.
func BenchmarkE20RouteServer(b *testing.B) {
	topo, db := benchTopo()
	workload := trafficgen.Generate(topo.Graph, trafficgen.Config{
		Seed: benchSeed, Requests: 2000, StubsOnly: true,
		Model: "zipf", ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
	})

	var cachedQPS, naiveQPS float64
	var synthCached, synthNaive uint64

	b.Run("cached", func(b *testing.B) {
		srv := routeserver.New(synthesis.NewOnDemand(topo.Graph, db), routeserver.Config{})
		served := 0
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			sink += len(routeserver.ServePhase(srv, workload, 4))
			served += len(workload)
		}
		if el := time.Since(start).Seconds(); el > 0 {
			cachedQPS = float64(served) / el
		}
		synthCached = srv.Snapshot().Misses
	})

	b.Run("naive", func(b *testing.B) {
		served := 0
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, req := range workload {
				res := synthesis.FindRoute(topo.Graph, db, req)
				sink += res.Expanded
				synthNaive++
			}
			served += len(workload)
		}
		if el := time.Since(start).Seconds(); el > 0 {
			naiveQPS = float64(served) / el
		}
	})

	writeRouteServerBench(b, benchReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Requests:    len(workload),
		CachedQPS:   cachedQPS,
		NaiveQPS:    naiveQPS,
		SynthCached: synthCached,
		SynthNaive:  synthNaive,
		Reduction:   float64(synthNaive) / float64(synthCached),
	})
}

// BenchmarkE22ScopedInvalidation measures serving under churn with the two
// invalidation modes: the same fail/restore timeline over the first two
// lateral links fires mid-run (by workload fraction), once with zero-value
// Changes (full generation bumps) and once with scoped link changes. It
// emits BENCH_scopedinvalidation.json. Wall-clock QPS and P95 are hardware-
// dependent; the synthesis counts are approximate here because event firing
// points depend on scheduling (E22 measures them exactly at phase barriers).
func BenchmarkE22ScopedInvalidation(b *testing.B) {
	topo := topology.Generate(topology.Config{
		Seed: benchSeed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
		MultihomedProb: 0.15, HybridProb: 0.15,
	})
	// Mostly permissive regime (cf. e22Policy): the cache must hold working
	// routes for retention to have anything to retain.
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: benchSeed, QOSClasses: 2, UCIClasses: 2,
		QOSCoverage: 1.0, UCICoverage: 1.0, HybridSourceFraction: 0.9,
		SourceRestrictionProb: 0.2, SourceFraction: 0.7,
		DestRestrictionProb: 0.1, DestFraction: 0.7, AvoidProb: 0.1,
	})
	workload := trafficgen.Generate(topo.Graph, trafficgen.Config{
		Seed: benchSeed + 2, Requests: 2000, StubsOnly: true,
		Model: "zipf", ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
	})

	var laterals []ad.Link
	for _, l := range topo.Graph.Links() {
		if l.Class == ad.Lateral && len(laterals) < 2 {
			laterals = append(laterals, l)
		}
	}
	if len(laterals) < 2 {
		b.Skip("topology has fewer than two lateral links")
	}

	// The timeline restores every failed link, so the graph is back in its
	// initial state after each iteration.
	events := func(scoped bool) []routeserver.Event {
		g := topo.Graph
		mk := func(after float64, l ad.Link, down bool) routeserver.Event {
			ev := routeserver.Event{After: after}
			if down {
				ev.Label = "fail"
				ev.Apply = func() { g.RemoveLink(l.A, l.B) }
				if scoped {
					ev.Change = synthesis.LinkDownChange(l.A, l.B)
				}
			} else {
				ev.Label = "restore"
				ev.Apply = func() { _ = g.AddLink(l) }
				if scoped {
					ev.Change = synthesis.LinkUpChange(l.A, l.B)
				}
			}
			return ev
		}
		return []routeserver.Event{
			mk(0.2, laterals[0], true), mk(0.4, laterals[0], false),
			mk(0.6, laterals[1], true), mk(0.8, laterals[1], false),
		}
	}

	report := scopedBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Requests: len(workload)}
	for _, mode := range []string{"full", "scoped"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			srv := routeserver.New(synthesis.NewOnDemand(topo.Graph, db), routeserver.Config{})
			sink += len(routeserver.ServePhase(srv, workload, 4)) // warm
			warm := srv.Snapshot()
			var qps float64
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep := routeserver.Run(srv, workload, routeserver.LoadConfig{
					Clients: 4, Events: events(mode == "scoped"),
				})
				sink += rep.Served
			}
			if el := time.Since(start).Seconds(); el > 0 {
				qps = float64(b.N*len(workload)) / el
			}
			fin := srv.Snapshot()
			synthPerRun := float64(fin.Misses-warm.Misses) / float64(b.N)
			if mode == "scoped" {
				report.ScopedQPS, report.ScopedP95NS = qps, fin.Latency.P95.Nanoseconds()
				report.SynthScopedPerRun = synthPerRun
			} else {
				report.FullQPS, report.FullP95NS = qps, fin.Latency.P95.Nanoseconds()
				report.SynthFullPerRun = synthPerRun
			}
		})
	}
	if report.SynthFullPerRun > 0 {
		report.SynthAvoided = 1 - report.SynthScopedPerRun/report.SynthFullPerRun
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_scopedinvalidation.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_scopedinvalidation.json: %v", err)
	}
}

// BenchmarkDaemonChurn measures the network daemon end to end: a TCP
// daemon serving 1000 concurrent client connections through the load
// harness (framing, per-session write queues, backpressure), once with a
// uniform workload and once Zipf-skewed, with connection churn
// (reconnect-every) and a control-plane fail/restore mid-run, ending in a
// graceful drain. It emits BENCH_daemon.json (QPS, P50/P99, reconnects;
// consumed by the bench-smoke CI step). Wall-clock numbers are hardware-
// dependent; served+no-route must equal requests and errors must be zero.
func BenchmarkDaemonChurn(b *testing.B) {
	topo := topology.Generate(topology.Config{
		Seed: benchSeed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
		MultihomedProb: 0.15, HybridProb: 0.15,
	})
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: benchSeed, QOSClasses: 2, UCIClasses: 2,
		QOSCoverage: 1.0, UCICoverage: 1.0, HybridSourceFraction: 0.9,
		SourceRestrictionProb: 0.2, SourceFraction: 0.7,
		DestRestrictionProb: 0.1, DestFraction: 0.7, AvoidProb: 0.1,
	})
	var lateral ad.Link
	for _, l := range topo.Graph.Links() {
		if l.Class == ad.Lateral {
			lateral = l
			break
		}
	}
	if lateral.A == 0 {
		b.Skip("topology has no lateral link")
	}

	const clients = 1000
	report := daemonBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Clients: clients}
	for _, model := range []string{"uniform", "zipf"} {
		model := model
		b.Run(model, func(b *testing.B) {
			workload := trafficgen.Generate(topo.Graph, trafficgen.Config{
				Seed: benchSeed + 2, Requests: 10000, StubsOnly: true,
				Model: model, ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
			})
			srv := routeserver.New(synthesis.NewOnDemand(topo.Graph, db), routeserver.Config{})
			dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Hard})
			if err != nil {
				b.Fatal(err)
			}
			// Twice the client count plus slack: a redialing client's old
			// session lingers until its reader observes the close, so the
			// transient session count tops the steady-state one.
			d := daemon.New(daemon.NewBackend(srv, dp, topo.Graph, db),
				daemon.Config{MaxConns: clients*2 + 64})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go d.Serve(ln)

			var last daemon.LoadReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = daemon.LoadRun("tcp", ln.Addr().String(), workload, daemon.LoadConfig{
					Clients:        clients,
					ReconnectEvery: 4, // each client redials ~2x over its 10-request slice
					Events: []daemon.ChurnEvent{
						{After: 0.4, Op: wire.CtlFail, A: lateral.A, B: lateral.B},
						{After: 0.7, Op: wire.CtlRestore, A: lateral.A, B: lateral.B},
					},
				})
				if last.Errors > 0 {
					b.Fatalf("load run hit %d errors", last.Errors)
				}
				if last.Served+last.NoRoute != last.Requests {
					b.Fatalf("accounting: %d served + %d no-route != %d requests",
						last.Served, last.NoRoute, last.Requests)
				}
			}
			b.StopTimer()
			d.Drain() // graceful: in-flight replies flushed, zero drops above
			m := d.Metrics()

			mr := daemonModeReport{
				Requests:   last.Requests,
				Served:     last.Served,
				NoRoute:    last.NoRoute,
				Reconnects: last.Reconnects,
				QPS:        last.QPS,
				P50NS:      last.Latency.P50.Nanoseconds(),
				P99NS:      last.Latency.P99.Nanoseconds(),
				Sessions:   m.Accepted,
				Evicted:    m.Evicted,
			}
			if model == "zipf" {
				report.Zipf = mr
			} else {
				report.Uniform = mr
			}
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_daemon.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_daemon.json: %v", err)
	}
}

// BenchmarkHAFailover measures a 3-replica HA group end to end: TCP
// daemons fronted by failover clients, the primary's warm cache streaming
// to the followers, then a SIGKILL-model primary death mid-run. Each
// iteration builds a fresh group (the kill is destructive), warms the
// primary, barriers the followers to the backlog tail, and drives the
// workload through daemon.LoadRun in failover mode while a side goroutine
// kills the primary and clocks the promotion. It emits BENCH_ha.json:
// throughput and tail latency around the failover, the redirect/reconnect
// work the clients did, the availability gap (longest reply stall,
// cluster-wide), and the promotion latency. Wall-clock numbers are
// hardware-dependent; served+no-route must equal requests and errors must
// be zero — no request is lost to the failover.
func BenchmarkHAFailover(b *testing.B) {
	topo := topology.Generate(topology.Config{
		Seed: benchSeed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
		MultihomedProb: 0.15, HybridProb: 0.15,
	})
	baseDB := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: benchSeed, QOSClasses: 2, UCIClasses: 2,
		QOSCoverage: 1.0, UCICoverage: 1.0, HybridSourceFraction: 0.9,
		SourceRestrictionProb: 0.2, SourceFraction: 0.7,
		DestRestrictionProb: 0.1, DestFraction: 0.7, AvoidProb: 0.1,
	})
	workload := trafficgen.Generate(topo.Graph, trafficgen.Config{
		Seed: benchSeed + 2, Requests: 30000, StubsOnly: true,
		Model: "zipf", ZipfS: 1.4, QOSClasses: 2, UCIClasses: 2,
	})

	const clients = 200
	const replicas = 3
	var last daemon.LoadReport
	var failover time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		peers := make([]ha.Peer, replicas)
		halns := make([]net.Listener, replicas)
		addrs := make([]string, replicas)
		nodes := make([]*ha.Node, replicas)
		daemons := make([]*daemon.Daemon, replicas)
		srvs := make([]*routeserver.Server, replicas)
		dlns := make([]net.Listener, replicas)
		for j := 0; j < replicas; j++ {
			haln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			dln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			halns[j], dlns[j] = haln, dln
			addrs[j] = dln.Addr().String()
			peers[j] = ha.Peer{ID: uint32(j + 1), HAAddr: haln.Addr().String(), ClientAddr: addrs[j]}
		}
		for j := 0; j < replicas; j++ {
			g := topo.Graph.Clone()
			dbc := baseDB.Clone()
			srv := routeserver.New(synthesis.NewOnDemand(g, dbc), routeserver.Config{})
			dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Hard})
			if err != nil {
				b.Fatal(err)
			}
			be := daemon.NewBackend(srv, dp, g, dbc)
			d := daemon.New(be, daemon.Config{MaxConns: clients*2 + 64})
			go d.Serve(dlns[j])
			node, err := ha.NewNode(ha.Config{
				ID: uint32(j + 1), Peers: peers,
				HeartbeatEvery:   10 * time.Millisecond,
				HeartbeatTimeout: 60 * time.Millisecond,
				Listener:         halns[j],
			}, be, d)
			if err != nil {
				b.Fatal(err)
			}
			srvs[j], daemons[j], nodes[j] = srv, d, node
		}
		for _, n := range nodes {
			n.Start()
		}
		// Warm the primary and barrier the followers to its backlog tail, so
		// the failover hands over an actually warm cache.
		routeserver.ServePhase(srvs[0], workload[:2000], 8)
		deadline := time.Now().Add(30 * time.Second)
		for {
			latest := nodes[0].BacklogLatest()
			if latest > 0 && nodes[1].AppliedSeq() == latest && nodes[2].AppliedSeq() == latest {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("followers never synced to the primary's backlog tail")
			}
			time.Sleep(time.Millisecond)
		}

		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(100 * time.Millisecond)
			start := time.Now()
			nodes[0].Kill()
			for !nodes[1].IsPrimary() && !nodes[2].IsPrimary() {
				time.Sleep(time.Millisecond)
			}
			failover = time.Since(start)
		}()
		b.StartTimer()
		last = daemon.LoadRun("tcp", "", workload, daemon.LoadConfig{
			Clients: clients, Addrs: addrs, Seed: benchSeed,
		})
		b.StopTimer()
		<-done
		for j := 1; j < replicas; j++ {
			nodes[j].Stop()
			daemons[j].Drain()
		}
		if last.Errors > 0 {
			b.Fatalf("load run hit %d errors across the failover", last.Errors)
		}
		if last.Served+last.NoRoute != last.Requests {
			b.Fatalf("accounting: %d served + %d no-route != %d requests",
				last.Served, last.NoRoute, last.Requests)
		}
		b.StartTimer()
	}
	b.StopTimer()

	report := haBenchReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Clients:           clients,
		Replicas:          replicas,
		Requests:          last.Requests,
		Served:            last.Served,
		NoRoute:           last.NoRoute,
		Reconnects:        last.Reconnects,
		ReconnectFailures: last.ReconnectFailures,
		Redirects:         last.Redirects,
		QPS:               last.QPS,
		P50NS:             last.Latency.P50.Nanoseconds(),
		P99NS:             last.Latency.P99.Nanoseconds(),
		AvailabilityGapMS: float64(last.MaxStall.Nanoseconds()) / 1e6,
		FailoverLatencyMS: float64(failover.Nanoseconds()) / 1e6,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_ha.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_ha.json: %v", err)
	}
}

// BenchmarkPGStateMillion holds 1M+ soft-state handles in one sharded
// table and measures the three costs the rewrite targets: install
// throughput (arena + wheel + link index, no steady-state allocation),
// expiry throughput with the timer wheel (cost ∝ due handles — the
// no-due sweep at full population visits a bounded slot walk, not a
// million entries), and resident bytes per handle. It emits
// BENCH_pgstate.json (consumed by the bench-smoke CI step). Wall-clock
// rates are hardware-dependent; the visit counts and the residency
// assertions are exact.
func BenchmarkPGStateMillion(b *testing.B) {
	const (
		handles = 1 << 20 // 1,048,576
		cohorts = 100     // staggered TTLs: each sweep expires ~1% of the table
		shards  = 64
		lookups = 200_000
	)
	// A small route pool over 64 ADs: entries share routes (as real flows
	// share paths) while the link index still fans out.
	routes := make([]ad.Path, 256)
	for i := range routes {
		routes[i] = ad.Path{adID(i % 32), adID(32 + i%8)}
	}
	req := policy.Request{Src: 1, Dst: 33}

	var report pgstateBenchReport
	for iter := 0; iter < b.N; iter++ {
		tab := pgstate.NewTable(pgstate.Config{Kind: pgstate.Soft, Shards: shards})

		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		start := time.Now()
		for h := uint64(1); h <= handles; h++ {
			ttl := sim.Time(1+h%cohorts) * sim.Second
			tab.Install(0, h, routes[h%uint64(len(routes))], 0, req, ttl)
		}
		installSecs := time.Since(start).Seconds()

		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)

		if tab.Len() != handles {
			b.Fatalf("table holds %d of %d handles", tab.Len(), handles)
		}

		// Lookup throughput at full population.
		start = time.Now()
		hits := 0
		for i := 0; i < lookups; i++ {
			if _, ok := tab.Lookup(1, uint64(i)%handles+1); ok {
				hits++
			}
		}
		lookupSecs := time.Since(start).Seconds()
		if hits != lookups {
			b.Fatalf("lookup hit %d of %d at full population", hits, lookups)
		}

		// A sweep with nothing due at full population: the wheel walks its
		// bounded slot range (plus cascade traffic), never the million
		// entries the reference would scan.
		preCost := tab.SweepCost()
		start = time.Now()
		if due := tab.ExpireDue(1); len(due) != 0 {
			b.Fatalf("no-due sweep expired %d handles", len(due))
		}
		noDueSecs := time.Since(start).Seconds()
		noDueCost := tab.SweepCost()

		// Cohort sweeps: each advances one second and expires ~1% of the
		// original table.
		expired := 0
		start = time.Now()
		for c := 1; c <= cohorts; c++ {
			expired += len(tab.ExpireDue(sim.Time(c)*sim.Second + 1))
		}
		sweepSecs := time.Since(start).Seconds()
		dueCost := tab.SweepCost()
		if expired != handles || tab.Len() != 0 {
			b.Fatalf("sweeps expired %d of %d, %d left", expired, handles, tab.Len())
		}

		report = pgstateBenchReport{
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			Handles:           handles,
			Shards:            shards,
			InstallsPerSec:    float64(handles) / installSecs,
			LookupsPerSec:     float64(lookups) / lookupSecs,
			ResidentBytes:     int64(after.HeapAlloc) - int64(before.HeapAlloc),
			BytesPerHandle:    (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / handles,
			Sweeps:            cohorts,
			Expired:           expired,
			ExpiredPerSec:     float64(expired) / sweepSecs,
			SweepEntryVisits:  dueCost.Entries - noDueCost.Entries,
			NoDueEntryVisits:  noDueCost.Entries - preCost.Entries,
			NoDueSlotWalks:    noDueCost.Slots - preCost.Slots,
			NoDueSweepMS:      noDueSecs * 1e3,
			DueSweepAvgVisits: float64(dueCost.Entries-noDueCost.Entries) / cohorts,
		}
		sink += expired
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_pgstate.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_pgstate.json: %v", err)
	}
}

// adID maps a small int to an ad.ID for benchmark route construction.
func adID(i int) ad.ID { return ad.ID(i + 1) }

type pgstateBenchReport struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Handles           int     `json:"handles"`
	Shards            int     `json:"shards"`
	InstallsPerSec    float64 `json:"installs_per_sec"`
	LookupsPerSec     float64 `json:"lookups_per_sec"`
	ResidentBytes     int64   `json:"resident_bytes"`
	BytesPerHandle    float64 `json:"bytes_per_handle"`
	Sweeps            int     `json:"sweeps"`
	Expired           int     `json:"expired"`
	ExpiredPerSec     float64 `json:"expired_per_sec"`
	SweepEntryVisits  uint64  `json:"sweep_entry_visits"`
	DueSweepAvgVisits float64 `json:"due_sweep_avg_visits"`
	NoDueEntryVisits  uint64  `json:"no_due_entry_visits"`
	NoDueSlotWalks    uint64  `json:"no_due_slot_walks"`
	NoDueSweepMS      float64 `json:"no_due_sweep_ms"`
}

type haBenchReport struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Clients           int     `json:"clients"`
	Replicas          int     `json:"replicas"`
	Requests          int     `json:"requests"`
	Served            int     `json:"served"`
	NoRoute           int     `json:"no_route"`
	Reconnects        int     `json:"reconnects"`
	ReconnectFailures int     `json:"reconnect_failures"`
	Redirects         int     `json:"redirects"`
	QPS               float64 `json:"qps"`
	P50NS             int64   `json:"p50_ns"`
	P99NS             int64   `json:"p99_ns"`
	AvailabilityGapMS float64 `json:"availability_gap_ms"`
	FailoverLatencyMS float64 `json:"failover_latency_ms"`
}

type daemonModeReport struct {
	Requests   int     `json:"requests"`
	Served     int     `json:"served"`
	NoRoute    int     `json:"no_route"`
	Reconnects int     `json:"reconnects"`
	QPS        float64 `json:"qps"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`
	Sessions   uint64  `json:"sessions"`
	Evicted    uint64  `json:"evicted"`
}

type daemonBenchReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Clients    int              `json:"clients"`
	Uniform    daemonModeReport `json:"uniform"`
	Zipf       daemonModeReport `json:"zipf"`
}

type scopedBenchReport struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Requests          int     `json:"requests"`
	FullQPS           float64 `json:"full_qps"`
	ScopedQPS         float64 `json:"scoped_qps"`
	FullP95NS         int64   `json:"full_p95_ns"`
	ScopedP95NS       int64   `json:"scoped_p95_ns"`
	SynthFullPerRun   float64 `json:"synth_full_per_run"`
	SynthScopedPerRun float64 `json:"synth_scoped_per_run"`
	SynthAvoided      float64 `json:"synth_avoided"`
}

type benchReport struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Requests    int     `json:"requests"`
	CachedQPS   float64 `json:"cached_qps"`
	NaiveQPS    float64 `json:"naive_qps"`
	Speedup     float64 `json:"cached_speedup"`
	SynthCached uint64  `json:"synth_cached"`
	SynthNaive  uint64  `json:"synth_naive"`
	Reduction   float64 `json:"synth_reduction"`
}

func writeRouteServerBench(b *testing.B, r benchReport) {
	// Speedup is naive time per request over cached time per request.
	if r.NaiveQPS > 0 {
		r.Speedup = r.CachedQPS / r.NaiveQPS
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_routeserver.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_routeserver.json: %v", err)
	}
}

// Full-suite benchmarks: the serial baseline and the parallel runner over
// the identical workload. Compare wall-clock ns/op to measure the fan-out
// speedup (the two produce byte-identical tables).

func BenchmarkAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink += len(experiments.RunAll(benchSeed, 1))
	}
}

func BenchmarkAllParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		sink += len(experiments.RunAll(benchSeed, workers))
	}
}

// Substrate microbenchmarks.

func benchTopo() (*topology.Topology, *policy.DB) {
	topo := topology.Generate(topology.Config{
		Seed: benchSeed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
	})
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: benchSeed + 1, SourceRestrictionProb: 0.5, SourceFraction: 0.5,
	})
	return topo, db
}

func BenchmarkWireLSAMarshal(b *testing.B) {
	lsa := &wire.LSA{
		Origin: 7, Seq: 3,
		Links: []wire.LSALink{{Neighbor: 1, Cost: 2, Up: true}, {Neighbor: 5, Cost: 1, Up: true}},
		Terms: []policy.Term{policy.OpenTerm(7, 1), policy.OpenTerm(7, 2)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += len(wire.Marshal(lsa))
	}
}

func BenchmarkWireLSAUnmarshal(b *testing.B) {
	lsa := &wire.LSA{
		Origin: 7, Seq: 3,
		Links: []wire.LSALink{{Neighbor: 1, Cost: 2, Up: true}},
		Terms: []policy.Term{policy.OpenTerm(7, 1)},
	}
	buf := wire.Marshal(lsa)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := wire.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		sink += int(m.Type())
	}
}

func BenchmarkSynthesisFindRoute(b *testing.B) {
	topo, db := benchTopo()
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%len(reqs)]
		res := synthesis.FindRoute(topo.Graph, db, req)
		sink += res.Expanded
	}
}

func BenchmarkSynthesisEnumerate(b *testing.B) {
	topo, db := benchTopo()
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%len(reqs)]
		sink += len(synthesis.EnumeratePaths(topo.Graph, db, req, synthesis.EnumerateConfig{MaxPaths: 16}))
	}
}

func BenchmarkORWGConvergence(b *testing.B) {
	topo, db := benchTopo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := orwg.New(topo.Graph.Clone(), db, orwg.Config{Seed: benchSeed})
		conv, _ := sys.Converge(600 * sim.Second)
		sink += int(conv)
	}
}

func BenchmarkORWGEstablish(b *testing.B) {
	topo, db := benchTopo()
	sys := orwg.New(topo.Graph, db, orwg.Config{Seed: benchSeed})
	sys.Converge(600 * sim.Second)
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sys.Establish(reqs[i%len(reqs)])
		sink += int(res.Messages)
	}
}

func BenchmarkOrderingFromLevels(b *testing.B) {
	topo, _ := benchTopo()
	g := topo.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := ordering.FromLevels(g)
		sink += o.Len()
	}
}

func BenchmarkOrderingNegotiate(b *testing.B) {
	cons := make([]ordering.Constraint, 0, 120)
	for i := 0; i < 40; i++ {
		a := ad.ID(1 + (i*7)%60)
		c := ad.ID(1 + (i*13)%60)
		if a != c {
			cons = append(cons, ordering.Constraint{Above: a, Below: c})
			cons = append(cons, ordering.Constraint{Above: c, Below: a})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kept, _ := ordering.Negotiate(cons)
		sink += len(kept)
	}
}

// Paper-scale benchmarks: a ~350-AD internet (4 backbones, 16 regionals, 32
// metros, ~300 campuses). The paper targets 10^5 ADs conceptually; these
// benches demonstrate the simulator's headroom and the protocols' scaling
// shape at laptop scale.

func largeTopo() (*topology.Topology, *policy.DB) {
	topo := topology.Generate(topology.Config{
		Seed: benchSeed, Backbones: 4, RegionalsPerBackbone: 4,
		MetrosPerRegional: 2, CampusesPerParent: 9,
		LateralProb: 0.05, BypassProb: 0.02, BackboneChords: 2,
	})
	db := policy.Generate(topo.Graph, policy.GenConfig{
		Seed: benchSeed + 1, SourceRestrictionProb: 0.3, SourceFraction: 0.5,
	})
	return topo, db
}

// Hot-path microbenchmarks: neighbor iteration and flooding dominate every
// protocol's convergence phase. All three should report ~0 allocs/op now
// that the graph caches its sorted adjacency and the network recycles
// payload buffers.

func BenchmarkGraphNeighbors(b *testing.B) {
	topo, _ := largeTopo()
	g := topo.Graph
	ids := g.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += len(g.Neighbors(ids[i%len(ids)]))
	}
}

func BenchmarkNetworkUpNeighbors(b *testing.B) {
	topo, _ := largeTopo()
	nw := sim.NewNetwork(topo.Graph, benchSeed)
	ids := topo.Graph.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += len(nw.UpNeighbors(ids[i%len(ids)]))
	}
}

func BenchmarkNetworkFlood(b *testing.B) {
	topo, _ := largeTopo()
	nw := sim.NewNetwork(topo.Graph, benchSeed)
	// Flood from the highest-degree AD; no nodes are registered, so the
	// benchmark isolates the Send/delivery machinery itself.
	hub := topo.Graph.IDs()[0]
	for _, id := range topo.Graph.IDs() {
		if topo.Graph.Degree(id) > topo.Graph.Degree(hub) {
			hub = id
		}
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += nw.Flood("lsa", hub, payload)
		nw.Engine.Run() // drain deliveries so buffers recycle
	}
}

func BenchmarkLargeFloodingConvergence(b *testing.B) {
	topo, db := largeTopo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := orwg.New(topo.Graph.Clone(), db, orwg.Config{Seed: benchSeed})
		conv, ok := sys.Converge(600 * sim.Second)
		if !ok {
			b.Fatal("did not converge")
		}
		sink += int(conv)
	}
}

func BenchmarkLargeECMAConvergence(b *testing.B) {
	topo, db := largeTopo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := ecma.New(topo.Graph.Clone(), db, ecma.Config{Seed: benchSeed})
		conv, ok := sys.Converge(600 * sim.Second)
		if !ok {
			b.Fatal("did not converge")
		}
		sink += int(conv)
	}
}

func BenchmarkLargeSynthesis(b *testing.B) {
	topo, db := largeTopo()
	reqs := core.AllPairsRequests(topo.Graph, true, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := synthesis.FindRoute(topo.Graph, db, reqs[i%len(reqs)])
		sink += res.Expanded
	}
}

// planBenchReport captures the what-if engine's scaling claim: plan cost is
// proportional to the blast radius (the entries the change's footprint
// index fans out to, each shadow-re-synthesized twice), not to the cache
// size the plan snapshots against.
type planBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Cases      []planBenchCase `json:"cases"`
	// CacheScaling is the mean latency ratio of the 32k-entry cache over
	// the 8k one at equal radius (~1.0: cache size is not the cost driver).
	// RadiusScaling is the mean ratio of radius 1024 over radius 64 at
	// equal cache size (>> 1: the radius is).
	CacheScaling  float64 `json:"cache_scaling"`
	RadiusScaling float64 `json:"radius_scaling"`
}

type planBenchCase struct {
	CacheSize int     `json:"cache_size"`
	Radius    int     `json:"radius"`
	NSPerOp   float64 `json:"ns_per_op"`
}

// BenchmarkPlan measures plan.Compute against a warm cache whose size and
// affected population are controlled independently: every installed entry
// carries a real footprint, but only `radius` of them cross the hub link
// the plan proposes to fail. Each iteration runs the full engine — snapshot
// under the strategy lock, victim resolution through the reverse indexes,
// and the two-clone shadow re-synthesis of the affected population. It
// emits BENCH_plan.json with the two scaling ratios.
func BenchmarkPlan(b *testing.B) {
	report := planBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ns := map[[2]int]float64{}

	for _, cacheSize := range []int{8192, 32768} {
		for _, radius := range []int{64, 1024} {
			cacheSize, radius := cacheSize, radius
			b.Run(fmt.Sprintf("cache=%d/radius=%d", cacheSize, radius), func(b *testing.B) {
				g, db, srv := planBenchWorld(b, cacheSize, radius)
				hubA, hubB := ad.ID(1), ad.ID(2)
				steps := []plan.Step{{Kind: plan.StepFail, A: hubA, B: hubB}}
				removed := map[[2]ad.ID]ad.Link{}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					rep, err := plan.Compute(srv, nil, g, db, removed, steps, plan.Config{Budget: -1})
					if err != nil {
						b.Fatal(err)
					}
					if len(rep.EvictedKeys) != radius {
						b.Fatalf("blast radius %d, want %d", len(rep.EvictedKeys), radius)
					}
					sink += rep.Retained
				}
				// Benchmark calibration re-runs this body with growing
				// b.N; keep the final (longest) measurement.
				ns[[2]int{cacheSize, radius}] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
			})
		}
	}

	for _, cacheSize := range []int{8192, 32768} {
		for _, radius := range []int{64, 1024} {
			report.Cases = append(report.Cases, planBenchCase{
				CacheSize: cacheSize, Radius: radius, NSPerOp: ns[[2]int{cacheSize, radius}],
			})
		}
	}
	if a, c := ns[[2]int{8192, 64}], ns[[2]int{32768, 64}]; a > 0 && c > 0 {
		b1, d := ns[[2]int{8192, 1024}], ns[[2]int{32768, 1024}]
		report.CacheScaling = (c/a + d/b1) / 2
		report.RadiusScaling = (b1/a + d/c) / 2
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_plan.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_plan.json: %v", err)
	}
}

// planBenchWorld builds the controlled serving state: two transit hubs
// (IDs 1 and 2) joined by the link the plan fails, stub fans on each whose
// routes cross it (the affected population), and a third hub (ID 3) whose
// local pairs pad the cache to `total` entries without touching the hub
// link. Entries are installed directly with their real footprints, so the
// reverse indexes see exactly what live synthesis would record.
func planBenchWorld(b *testing.B, total, affected int) (*ad.Graph, *policy.DB, *routeserver.Server) {
	b.Helper()
	g := ad.NewGraph()
	hubA := g.AddAD("hubA", ad.Transit, ad.Backbone)
	hubB := g.AddAD("hubB", ad.Transit, ad.Backbone)
	hubC := g.AddAD("hubC", ad.Transit, ad.Backbone)
	mustLink := func(a, bid ad.ID) {
		if err := g.AddLink(ad.Link{A: a, B: bid, Cost: 1}); err != nil {
			b.Fatal(err)
		}
	}
	mustLink(hubA, hubB)
	const fan = 8
	var left, right, filler []ad.ID
	for i := 0; i < fan; i++ {
		l := g.AddAD(fmt.Sprintf("l%d", i), ad.Stub, ad.Campus)
		r := g.AddAD(fmt.Sprintf("r%d", i), ad.Stub, ad.Campus)
		mustLink(l, hubA)
		mustLink(r, hubB)
		left, right = append(left, l), append(right, r)
	}
	for i := 0; i < 24; i++ {
		f := g.AddAD(fmt.Sprintf("f%d", i), ad.Stub, ad.Campus)
		mustLink(f, hubC)
		filler = append(filler, f)
	}
	db := policy.OpenDB(g)
	srv := routeserver.New(synthesis.NewOnDemand(g, db), routeserver.Config{})

	install := func(req policy.Request, path ad.Path) {
		srv.InstallEntry(routeserver.KeyOf(req),
			routeserver.Result{Path: path, Found: true},
			synthesis.FootprintOf(g, db, req, path))
	}
	// Affected entries: distinct (src, dst, hour) keys routed across the
	// hub link.
	for i := 0; i < affected; i++ {
		src, dst := left[i%fan], right[(i/fan)%fan]
		req := policy.Request{Src: src, Dst: dst, Hour: uint8((i / (fan * fan)) % 24)}
		install(req, ad.Path{src, hubA, hubB, dst})
	}
	// Filler entries: hubC-local pairs whose footprints never mention the
	// hub link, padding the cache to the target size.
	n := 0
	for h := 0; n < total-affected && h < 24; h++ {
		for qos := 0; n < total-affected && qos < 4; qos++ {
			for i := 0; n < total-affected && i < len(filler); i++ {
				for j := 0; n < total-affected && j < len(filler); j++ {
					if i == j {
						continue
					}
					src, dst := filler[i], filler[j]
					req := policy.Request{Src: src, Dst: dst, QOS: policy.QOS(qos), Hour: uint8(h)}
					install(req, ad.Path{src, hubC, dst})
					n++
				}
			}
		}
	}
	if got := srv.CacheLen(); got != total {
		b.Fatalf("cache holds %d entries, want %d", got, total)
	}
	return g, db, srv
}

// slowSynth wraps a strategy with a calibrated per-search delay, standing
// in for an expensive policy search so BenchmarkParallelSynth measures the
// serving layer's lock structure rather than Dijkstra's constant factor:
// sleeps overlap on any core count, so miss QPS scales with the worker
// pool exactly when misses run concurrently.
type slowSynth struct {
	synthesis.Strategy
	delay time.Duration
}

func (s slowSynth) Route(req policy.Request) (ad.Path, bool) {
	time.Sleep(s.delay)
	return s.Strategy.Route(req)
}

type parallelSynthPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	MissQPS    float64 `json:"miss_qps"`
}

type parallelSynthReport struct {
	CalibratedDelay string               `json:"calibrated_delay"`
	DistinctKeys    int                  `json:"distinct_keys"`
	Points          []parallelSynthPoint `json:"points"`
	Scaling4Over1   float64              `json:"scaling_4_over_1"`
}

// BenchmarkParallelSynth pins the tentpole claim of the parallel miss
// path: distinct-key miss throughput against a calibrated slow strategy at
// GOMAXPROCS 1, 2, and 4 (the default worker pool sizes with it). The
// report lands in BENCH_parallelsynth.json for the CI artifact glob.
func BenchmarkParallelSynth(b *testing.B) {
	topo, db := benchTopo()
	const delay = 500 * time.Microsecond
	seedReq := trafficgen.Generate(topo.Graph, trafficgen.Config{
		Seed: benchSeed, Requests: 1, StubsOnly: true, Model: "zipf", ZipfS: 1.4,
	})[0]
	const keys = 64
	reqs := make([]policy.Request, keys)
	for i := range reqs {
		r := seedReq
		r.Hour = uint8(i % 24)
		r.QOS = policy.QOS(i / 24)
		reqs[i] = r
	}

	missQPS := func(procs int) float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		srv := routeserver.New(slowSynth{synthesis.NewOnDemand(topo.Graph, db), delay},
			routeserver.Config{})
		start := time.Now()
		sink += len(routeserver.ServePhase(srv, reqs, keys))
		el := time.Since(start).Seconds()
		if el <= 0 {
			return 0
		}
		return float64(srv.Snapshot().Misses) / el
	}

	rep := parallelSynthReport{CalibratedDelay: delay.String(), DistinctKeys: keys}
	for i := 0; i < b.N; i++ {
		rep.Points = rep.Points[:0]
		for _, procs := range []int{1, 2, 4} {
			rep.Points = append(rep.Points, parallelSynthPoint{
				GOMAXPROCS: procs,
				MissQPS:    missQPS(procs),
			})
		}
	}
	if rep.Points[0].MissQPS > 0 {
		rep.Scaling4Over1 = rep.Points[2].MissQPS / rep.Points[0].MissQPS
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench report: %v", err)
	}
	if err := os.WriteFile("BENCH_parallelsynth.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_parallelsynth.json: %v", err)
	}
}
