// Command topogen generates inter-AD topologies matching the paper's model
// (§2.1) and exports them as DOT or JSON.
//
// Usage:
//
//	topogen -figure1 -format dot
//	topogen -seed 7 -backbones 2 -regionals 3 -campuses 3 -lateral 0.25 -bypass 0.1 -format json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	var (
		figure1    = flag.Bool("figure1", false, "emit the paper's Figure 1 example topology")
		seed       = flag.Int64("seed", 1, "generator seed")
		backbones  = flag.Int("backbones", 2, "number of backbone ADs")
		regionals  = flag.Int("regionals", 2, "regionals per backbone")
		metros     = flag.Int("metros", 0, "metros per regional (0 = three-level hierarchy)")
		campuses   = flag.Int("campuses", 3, "campuses per lowest transit AD")
		lateral    = flag.Float64("lateral", 0.0, "lateral link probability")
		bypass     = flag.Float64("bypass", 0.0, "bypass link probability")
		multihomed = flag.Float64("multihomed", 0.0, "multi-homed stub probability")
		hybrid     = flag.Float64("hybrid", 0.0, "hybrid (limited-transit) AD probability")
		format     = flag.String("format", "dot", "output format: dot | json | stats")
	)
	flag.Parse()

	var topo *topology.Topology
	if *figure1 {
		topo = topology.Figure1()
	} else {
		topo = topology.Generate(topology.Config{
			Seed:                 *seed,
			Backbones:            *backbones,
			RegionalsPerBackbone: *regionals,
			MetrosPerRegional:    *metros,
			CampusesPerParent:    *campuses,
			LateralProb:          *lateral,
			BypassProb:           *bypass,
			MultihomedProb:       *multihomed,
			HybridProb:           *hybrid,
		})
	}

	var err error
	switch *format {
	case "dot":
		err = topology.WriteDOT(os.Stdout, topo.Graph)
	case "json":
		err = topology.WriteJSON(os.Stdout, topo.Graph)
	case "stats":
		s := topology.ComputeStats(topo.Graph)
		fmt.Printf("ADs: %d\nlinks: %d\nconnected: %v\ntree: %v\navg degree: %.2f\n",
			s.ADs, s.Links, s.Connected, s.Tree, s.AvgDegree)
		fmt.Printf("by level: %v\nby class: %v\nby link class: %v\n",
			s.ByLevel, s.ByClass, s.ByLinkClass)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
