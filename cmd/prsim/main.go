// Command prsim runs one inter-AD routing architecture over a generated
// topology and policy set, reports its convergence behaviour, and evaluates
// route availability against the policy oracle.
//
// Usage:
//
//	prsim -proto orwg -seed 7 -restriction 0.6
//	prsim -proto ecma -fail      # inject a link failure after convergence
//	prsim -proto idrp -src 5 -dst 12   # trace one route
//	prsim -scenario my.json      # run a declarative scenario file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

func main() {
	var (
		proto        = flag.String("proto", "orwg", "protocol: plain-dv | egp | filters | ecma | bgp | idrp | idrp-multi | lshh | orwg")
		seed         = flag.Int64("seed", 42, "seed for topology, policy, and simulation")
		backbones    = flag.Int("backbones", 2, "backbone ADs")
		regionals    = flag.Int("regionals", 3, "regionals per backbone")
		campuses     = flag.Int("campuses", 3, "campuses per regional")
		lateral      = flag.Float64("lateral", 0.25, "lateral link probability")
		bypass       = flag.Float64("bypass", 0.10, "bypass link probability")
		restriction  = flag.Float64("restriction", 0.5, "source-restriction probability for transit policies")
		failLink     = flag.Bool("fail", false, "fail a single-homed stub uplink after convergence and reconverge")
		src          = flag.Uint("src", 0, "trace a route from this AD (with -dst)")
		dst          = flag.Uint("dst", 0, "trace a route to this AD (with -src)")
		scenarioFile = flag.String("scenario", "", "run a declarative JSON scenario instead of flags")
		trace        = flag.Bool("trace", false, "print every delivered protocol message")
		workload     = flag.String("workload", "all-pairs", "traffic workload: all-pairs | uniform | zipf | gravity")
		requests     = flag.Int("requests", 400, "workload length for sampled models")
	)
	flag.Parse()

	if *scenarioFile != "" {
		f, err := os.Open(*scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sc, err := scenario.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sc.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	topo := topology.Generate(topology.Config{
		Seed:                 *seed,
		Backbones:            *backbones,
		RegionalsPerBackbone: *regionals,
		CampusesPerParent:    *campuses,
		LateralProb:          *lateral,
		BypassProb:           *bypass,
		MultihomedProb:       0.1,
	})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed:                  *seed + 1,
		SourceRestrictionProb: *restriction,
		SourceFraction:        0.5,
	})

	var sys core.System
	switch *proto {
	case "plain-dv":
		sys = plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: *seed})
	case "egp":
		sys = egp.New(g, egp.Config{Seed: *seed})
	case "filters":
		sys = filters.New(g, db, filters.Config{Seed: *seed})
	case "ecma":
		sys = ecma.New(g, db, ecma.Config{Seed: *seed})
	case "bgp":
		sys = idrp.New(g, db, idrp.Config{Seed: *seed, BGPMode: true})
	case "idrp":
		sys = idrp.New(g, db, idrp.Config{Seed: *seed})
	case "idrp-multi":
		sys = idrp.New(g, db, idrp.Config{Seed: *seed, MultiRoute: 4})
	case "lshh":
		sys = lshh.New(g, db, lshh.Config{Seed: *seed})
	case "orwg":
		sys = orwg.New(g, db, orwg.Config{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	if *trace {
		sys.Network().Trace = func(format string, args ...interface{}) {
			fmt.Printf("trace: "+format+"\n", args...)
		}
	}

	fmt.Printf("topology: %d ADs, %d links (seed %d)\n", g.NumADs(), g.NumLinks(), *seed)
	fmt.Printf("policy: %d terms, restriction %.2f\n\n", db.NumTerms(), *restriction)

	oracle := core.Oracle{G: g, DB: db}
	var reqs []policy.Request
	if *workload == "all-pairs" {
		reqs = core.AllPairsRequests(g, true, 0, 0)
	} else {
		reqs = trafficgen.Generate(g, trafficgen.Config{
			Seed: *seed + 2, Requests: *requests, StubsOnly: true, Model: *workload,
		})
	}
	m := core.RunScenario(sys, oracle, reqs, 600*sim.Second)
	fmt.Println(m)

	if *failLink {
		victim := firstSingleHomedUplink(g)
		fmt.Printf("\nfailing link %v-%v ...\n", victim.A, victim.B)
		if f, ok := sys.(interface{ FailLink(a, b ad.ID) error }); ok {
			if err := f.FailLink(victim.A, victim.B); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		conv, quiesced := sys.Converge(6000 * sim.Second)
		fmt.Printf("reconverged at %v (quiesced: %v), total messages %d\n",
			conv, quiesced, sys.Network().Stats.MessagesSent)
	}

	if *src != 0 && *dst != 0 {
		req := policy.Request{Src: ad.ID(*src), Dst: ad.ID(*dst)}
		out := sys.Route(req)
		fmt.Printf("\nroute %v: path=%v delivered=%v looped=%v legal=%v\n",
			req, out.Path, out.Delivered, out.Looped, oracle.Legal(out.Path, req))
	}
}

func firstSingleHomedUplink(g *ad.Graph) ad.Link {
	for _, info := range g.ADs() {
		if info.Class == ad.Stub && g.Degree(info.ID) == 1 {
			return g.IncidentLinks(info.ID)[0]
		}
	}
	return g.Links()[0]
}
