// Command prsim runs one inter-AD routing architecture over a generated
// topology and policy set, reports its convergence behaviour, and evaluates
// route availability against the policy oracle.
//
// Usage:
//
//	prsim -proto orwg -seed 7 -restriction 0.6
//	prsim -proto ecma -fail      # inject a link failure after convergence
//	prsim -proto idrp -src 5 -dst 12   # trace one route
//	prsim -proto all -parallel 4 # compare all protocols, 4 runs at a time
//	prsim -scenario my.json      # run a declarative scenario file
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/protocols/ecma"
	"repro/internal/protocols/egp"
	"repro/internal/protocols/filters"
	"repro/internal/protocols/idrp"
	"repro/internal/protocols/lshh"
	"repro/internal/protocols/orwg"
	"repro/internal/protocols/plaindv"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// protoOrder fixes the report order of the -proto all comparison.
var protoOrder = []string{
	"plain-dv", "egp", "filters", "ecma", "bgp", "idrp", "idrp-multi", "lshh", "orwg",
}

// newSystem builds the named protocol over the shared topology and policy
// set. The graph and DB are read-only to a running system, so systems built
// from the same pair may run concurrently.
func newSystem(proto string, g *ad.Graph, db *policy.DB, seed int64) (core.System, bool) {
	switch proto {
	case "plain-dv":
		return plaindv.New(g, plaindv.Config{SplitHorizon: true, Seed: seed}), true
	case "egp":
		return egp.New(g, egp.Config{Seed: seed}), true
	case "filters":
		return filters.New(g, db, filters.Config{Seed: seed}), true
	case "ecma":
		return ecma.New(g, db, ecma.Config{Seed: seed}), true
	case "bgp":
		return idrp.New(g, db, idrp.Config{Seed: seed, BGPMode: true}), true
	case "idrp":
		return idrp.New(g, db, idrp.Config{Seed: seed}), true
	case "idrp-multi":
		return idrp.New(g, db, idrp.Config{Seed: seed, MultiRoute: 4}), true
	case "lshh":
		return lshh.New(g, db, lshh.Config{Seed: seed}), true
	case "orwg":
		return orwg.New(g, db, orwg.Config{Seed: seed}), true
	default:
		return nil, false
	}
}

func main() {
	var (
		proto        = flag.String("proto", "orwg", "protocol: plain-dv | egp | filters | ecma | bgp | idrp | idrp-multi | lshh | orwg | all")
		seed         = flag.Int64("seed", 42, "seed for topology, policy, and simulation")
		backbones    = flag.Int("backbones", 2, "backbone ADs")
		regionals    = flag.Int("regionals", 3, "regionals per backbone")
		campuses     = flag.Int("campuses", 3, "campuses per regional")
		lateral      = flag.Float64("lateral", 0.25, "lateral link probability")
		bypass       = flag.Float64("bypass", 0.10, "bypass link probability")
		restriction  = flag.Float64("restriction", 0.5, "source-restriction probability for transit policies")
		failLink     = flag.Bool("fail", false, "fail a single-homed stub uplink after convergence and reconverge")
		src          = flag.Uint("src", 0, "trace a route from this AD (with -dst)")
		dst          = flag.Uint("dst", 0, "trace a route to this AD (with -src)")
		scenarioFile = flag.String("scenario", "", "run a declarative JSON scenario instead of flags")
		trace        = flag.Bool("trace", false, "print every delivered protocol message")
		workload     = flag.String("workload", "all-pairs", "traffic workload: all-pairs | uniform | zipf | gravity")
		requests     = flag.Int("requests", 400, "workload length for sampled models")
		parallelism  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent protocol runs for -proto all (results are deterministic regardless)")
	)
	flag.Parse()

	if *scenarioFile != "" {
		f, err := os.Open(*scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sc, err := scenario.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sc.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	topo := topology.Generate(topology.Config{
		Seed:                 *seed,
		Backbones:            *backbones,
		RegionalsPerBackbone: *regionals,
		CampusesPerParent:    *campuses,
		LateralProb:          *lateral,
		BypassProb:           *bypass,
		MultihomedProb:       0.1,
	})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed:                  *seed + 1,
		SourceRestrictionProb: *restriction,
		SourceFraction:        0.5,
	})

	oracle := core.Oracle{G: g, DB: db}
	var reqs []policy.Request
	if *workload == "all-pairs" {
		reqs = core.AllPairsRequests(g, true, 0, 0)
	} else {
		reqs = trafficgen.Generate(g, trafficgen.Config{
			Seed: *seed + 2, Requests: *requests, StubsOnly: true, Model: *workload,
		})
	}

	if *proto == "all" {
		if *failLink || *trace || *src != 0 || *dst != 0 {
			fmt.Fprintln(os.Stderr, "-fail, -trace, -src and -dst apply to a single protocol; pick one with -proto")
			os.Exit(2)
		}
		fmt.Printf("topology: %d ADs, %d links (seed %d)\n", g.NumADs(), g.NumLinks(), *seed)
		fmt.Printf("policy: %d terms, restriction %.2f\n\n", db.NumTerms(), *restriction)
		ms := make([]core.Metrics, len(protoOrder))
		tasks := make([]func(), len(protoOrder))
		for i, name := range protoOrder {
			i, name := i, name
			sys, _ := newSystem(name, g, db, *seed)
			tasks[i] = func() {
				ms[i] = core.RunScenario(sys, oracle, reqs, 600*sim.Second)
			}
		}
		parallel.Do(*parallelism, tasks)
		for _, m := range ms {
			fmt.Println(m)
		}
		return
	}

	sys, ok := newSystem(*proto, g, db, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	if *trace {
		sys.Network().Trace = func(format string, args ...interface{}) {
			fmt.Printf("trace: "+format+"\n", args...)
		}
	}

	fmt.Printf("topology: %d ADs, %d links (seed %d)\n", g.NumADs(), g.NumLinks(), *seed)
	fmt.Printf("policy: %d terms, restriction %.2f\n\n", db.NumTerms(), *restriction)

	m := core.RunScenario(sys, oracle, reqs, 600*sim.Second)
	fmt.Println(m)

	if *failLink {
		victim := firstSingleHomedUplink(g)
		fmt.Printf("\nfailing link %v-%v ...\n", victim.A, victim.B)
		if f, ok := sys.(interface{ FailLink(a, b ad.ID) error }); ok {
			if err := f.FailLink(victim.A, victim.B); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		conv, quiesced := sys.Converge(6000 * sim.Second)
		fmt.Printf("reconverged at %v (quiesced: %v), total messages %d\n",
			conv, quiesced, sys.Network().Stats.MessagesSent)
	}

	if *src != 0 && *dst != 0 {
		req := policy.Request{Src: ad.ID(*src), Dst: ad.ID(*dst)}
		out := sys.Route(req)
		fmt.Printf("\nroute %v: path=%v delivered=%v looped=%v legal=%v\n",
			req, out.Path, out.Delivered, out.Looped, oracle.Legal(out.Path, req))
	}
}

func firstSingleHomedUplink(g *ad.Graph) ad.Link {
	for _, info := range g.ADs() {
		if info.Class == ad.Stub && g.Degree(info.ID) == 1 {
			return g.IncidentLinks(info.ID)[0]
		}
	}
	return g.Links()[0]
}
