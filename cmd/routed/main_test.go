package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ad"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/wire"
)

func testWorld(t *testing.T) (*ad.Graph, *policy.DB, *routeserver.Server, *routeserver.DataPlane) {
	t.Helper()
	g := ad.NewGraph()
	src := g.AddAD("src", ad.Stub, ad.Campus)
	t1 := g.AddAD("t1", ad.Transit, ad.Regional)
	t2 := g.AddAD("t2", ad.Transit, ad.Regional)
	dst := g.AddAD("dst", ad.Stub, ad.Campus)
	for _, l := range []ad.Link{
		{A: src, B: t1, Cost: 1}, {A: t1, B: dst, Cost: 1},
		{A: src, B: t2, Cost: 5}, {A: t2, B: dst, Cost: 5},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	db := policy.OpenDB(g)
	srv := routeserver.New(synthesis.NewOnDemand(g, db), routeserver.Config{})
	dp, err := routeserver.NewDataPlane(pgstate.Config{Kind: pgstate.Soft, TTL: 30 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	return g, db, srv, dp
}

// session scripts a full line-mode conversation and returns the output.
func session(t *testing.T, input string) string {
	t.Helper()
	g, db, srv, dp := testWorld(t)
	var out strings.Builder
	if err := serve(strings.NewReader(input), &out, daemon.NewBackend(srv, dp, g, db)); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return out.String()
}

func TestServeQueryAndCommands(t *testing.T) {
	out := session(t, `
# comment lines and blanks are skipped

1 4
99 98
stats
bogus one
quit
1 4
`)
	if !strings.Contains(out, "AD1>AD2>AD4") {
		t.Errorf("query did not serve the cheap route:\n%s", out)
	}
	if !strings.Contains(out, "no-route") {
		t.Errorf("unroutable pair not reported:\n%s", out)
	}
	if !strings.Contains(out, "gen 0: 2 queries") {
		t.Errorf("stats line wrong:\n%s", out)
	}
	if !strings.Contains(out, "bad number") {
		t.Errorf("bad query not rejected:\n%s", out)
	}
	// quit stops the session: the trailing query is never answered.
	if strings.Count(out, "AD1>AD2>AD4") != 1 {
		t.Errorf("session did not stop at quit:\n%s", out)
	}
}

func TestServeFailRestoreReroutes(t *testing.T) {
	out := session(t, `
1 4
fail 2 4
1 4
restore 2 4
1 4
invalidate
1 4
fail 9 9
restore 9 9
fail x y
`)
	// Cheap route before the failure, detour during. The restore is scoped:
	// the detour is still legal, so it keeps serving (retained, no longer
	// optimal) until "invalidate" forces the full bump and the cheap route
	// returns.
	if strings.Count(out, "AD1>AD2>AD4") != 2 || strings.Count(out, "AD1>AD3>AD4") != 2 {
		t.Errorf("fail/restore/invalidate sequence wrong:\n%s", out)
	}
	if !strings.Contains(out, "ok (evicted 1, retained 0)") {
		t.Errorf("fail did not report a scoped eviction:\n%s", out)
	}
	if !strings.Contains(out, "ok (evicted 0, retained 1)") {
		t.Errorf("restore did not retain the detour:\n%s", out)
	}
	if !strings.Contains(out, "ok (gen 1)") {
		t.Errorf("invalidate did not bump the generation:\n%s", out)
	}
	if !strings.Contains(out, "no link") {
		t.Errorf("failing a nonexistent link not reported:\n%s", out)
	}
	if !strings.Contains(out, "was not failed here") {
		t.Errorf("restoring an unfailed link not reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: fail") {
		t.Errorf("bad fail args not reported:\n%s", out)
	}
}

func TestServePolicyCommand(t *testing.T) {
	// Making t1 expensive flips the served route to t2.
	out := session(t, `
1 4
policy 2 100
1 4
policy
`)
	if !strings.Contains(out, "AD1>AD2>AD4") || !strings.Contains(out, "AD1>AD3>AD4") {
		t.Errorf("policy change did not reroute:\n%s", out)
	}
	if !strings.Contains(out, "usage: policy") {
		t.Errorf("bad policy args not reported:\n%s", out)
	}
}

func TestServeDataPlaneLifecycle(t *testing.T) {
	out := session(t, `
install 1 4
send 1
refresh
tick 10
send 1
tick 100
send 1
state
install 99 98
send nope
send 12345
`)
	checks := []string{
		"handle 1 via AD1>AD2>AD4",
		"delivered",
		"refreshed 1 flows, 0 lost state",
		"t=10s, 0 entries expired",
		// 100s with no refresh: all three entries expire, flow abandoned.
		"entries expired",
		"unknown handle 1",
		"flows 0",
		"no-route",
		"bad handle",
		"unknown handle 12345",
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServeFailureRepairFlow(t *testing.T) {
	out := session(t, `
install 1 4
fail 2 4
send 1
repair
state
`)
	for _, want := range []string{
		"handle 1 via AD1>AD2>AD4",
		"flushed 3 handle entries",
		"repaired 1/1 flows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParseQuery(t *testing.T) {
	req, err := parseQuery([]string{"1", "2", "3", "4", "5"})
	if err != nil {
		t.Fatal(err)
	}
	want := policy.Request{Src: 1, Dst: 2, QOS: 3, UCI: 4, Hour: 5}
	if req != want {
		t.Errorf("parsed %+v, want %+v", req, want)
	}
	for _, bad := range [][]string{{"1"}, {"1", "2", "3", "4", "5", "6"}, {"1", "x"}} {
		if _, err := parseQuery(bad); err == nil {
			t.Errorf("parseQuery(%v) accepted", bad)
		}
	}
}

func TestTwoIDs(t *testing.T) {
	if a, b, ok := twoIDs([]string{"3", "9"}); !ok || a != 3 || b != 9 {
		t.Errorf("twoIDs = %v %v %v", a, b, ok)
	}
	for _, bad := range [][]string{{}, {"1"}, {"1", "2", "3"}, {"x", "2"}} {
		if _, _, ok := twoIDs(bad); ok {
			t.Errorf("twoIDs(%v) accepted", bad)
		}
	}
}

func TestParsePlanSteps(t *testing.T) {
	steps, err := parsePlanSteps("fail 2 4; policy 7 10 ;restore 2 4")
	if err != nil {
		t.Fatal(err)
	}
	want := []wire.PlanStep{
		{Op: wire.CtlFail, A: 2, B: 4},
		{Op: wire.CtlPolicy, A: 7, Cost: 10},
		{Op: wire.CtlRestore, A: 2, B: 4},
	}
	if len(steps) != len(want) {
		t.Fatalf("parsed %d steps, want %d", len(steps), len(want))
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d: %+v, want %+v", i, steps[i], want[i])
		}
	}
	for _, bad := range []string{"", ";", "fail 2", "policy x 1", "drop 2 4", "fail 2 4; bogus"} {
		if _, err := parsePlanSteps(bad); err == nil {
			t.Errorf("parsePlanSteps(%q) accepted", bad)
		}
	}
}

func TestValidateFlags(t *testing.T) {
	ok := []flagCoherence{
		{},                        // plain line mode
		{Load: true, Churn: true}, // local load run
		{Load: true, Connect: "h:1", ReconnectEvery: 5}, // network load
		{Listen: ":0"}, // standalone daemon
		{Listen: ":0", ReplicaID: 1, Peers: "1@a@b", ReplicaOf: 1}, // HA daemon
	}
	for _, f := range ok {
		if err := validateFlags(f); err != nil {
			t.Errorf("validateFlags(%+v) rejected a coherent set: %v", f, err)
		}
	}
	bad := []flagCoherence{
		{Connect: "h:1"},                // -connect without -load
		{Load: true, ReconnectEvery: 5}, // -reconnect-every without -connect
		{Churn: true},                   // -churn without -load
		{Load: true, Listen: ":0"},      // load generator and daemon at once
		{ReplicaID: 1, Peers: "1@a@b"},  // HA flags outside daemon mode
		{Listen: ":0", ReplicaID: 1},    // -replica-id without -peers
		{Listen: ":0", Peers: "1@a@b"},  // -peers without -replica-id
		{Listen: ":0", ReplicaOf: 2},    // -replica-of without -replica-id
	}
	for _, f := range bad {
		if err := validateFlags(f); err == nil {
			t.Errorf("validateFlags(%+v) accepted an incoherent set", f)
		}
	}
}

func TestChurnEventsPreferLateral(t *testing.T) {
	g := ad.NewGraph()
	a := g.AddAD("a", ad.Transit, ad.Backbone)
	b := g.AddAD("b", ad.Transit, ad.Regional)
	c := g.AddAD("c", ad.Transit, ad.Regional)
	if err := g.AddLink(ad.Link{A: a, B: b, Class: ad.Hierarchical}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(ad.Link{A: b, B: c, Class: ad.Lateral}); err != nil {
		t.Fatal(err)
	}
	evs := churnEvents(g)
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if !strings.Contains(evs[0].Label, "AD2") || !strings.Contains(evs[0].Label, "AD3") {
		t.Errorf("churn did not pick the lateral link: %q", evs[0].Label)
	}
	if churnEvents(ad.NewGraph()) != nil {
		t.Error("empty graph produced churn events")
	}
}

func TestPrintReportAndWriteJSON(t *testing.T) {
	g, db, srv, _ := testWorld(t)
	_ = g
	_ = db
	workload := []policy.Request{{Src: 1, Dst: 4}, {Src: 1, Dst: 4}, {Src: 4, Dst: 1}}
	rep := routeserver.Run(srv, workload, routeserver.LoadConfig{Clients: 2})
	var out strings.Builder
	printReport(&out, srv, rep)
	for _, want := range []string{"strategy", "requests    3", "cache", "latency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSON(path, srv, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["requests"] != float64(3) {
		t.Errorf("json requests = %v", m["requests"])
	}
}

func TestBuildStrategyKinds(t *testing.T) {
	g, db, _, _ := testWorld(t)
	workload := []policy.Request{{Src: 1, Dst: 4}}
	for _, kind := range []string{"on-demand", "precomputed", "hybrid", "pruned"} {
		st := buildStrategy(kind, g, db, workload, 1, 1)
		if st == nil {
			t.Fatalf("%s: nil strategy", kind)
		}
		if path, found := st.Route(policy.Request{Src: 1, Dst: 4}); !found || len(path) == 0 {
			t.Errorf("%s: no route served", kind)
		}
	}
}
