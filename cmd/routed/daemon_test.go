package main

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/ad"
	"repro/internal/policy"
	"repro/internal/routeserver/daemon"
	"repro/internal/wire"
)

// TestSessionParityLineVsProtocol pins that the stdin line mode and the
// binary protocol are two skins over the same dispatch: a scripted session
// — queries, fail/restore/policy churn, data-plane lifecycle, stats — run
// over a TCP daemon must produce, reply by reply, the results the line
// mode prints for the same commands against an identical world.
func TestSessionParityLineVsProtocol(t *testing.T) {
	// The protocol side: its own world behind a TCP daemon.
	g, db, srv, dp := testWorld(t)
	d := daemon.New(daemon.NewBackend(srv, dp, g, db), daemon.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)
	defer d.Drain()
	cl, err := daemon.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Each step is one line-mode command plus the wire calls that mirror
	// it; the wire replies are rendered with the line adapter's formats so
	// the two transcripts must match byte for byte.
	var lines, fromWire []string
	step := func(line string, viaWire func() string) {
		lines = append(lines, line)
		fromWire = append(fromWire, viaWire())
	}
	query := func(src, dst uint32) func() string {
		return func() string {
			res, err := cl.Query(policy.Request{Src: ad.ID(src), Dst: ad.ID(dst)})
			if err != nil {
				t.Fatalf("query %d %d: %v", src, dst, err)
			}
			if !res.Found {
				return fmt.Sprintf("no-route %v\n", policy.Request{Src: ad.ID(src), Dst: ad.ID(dst)})
			}
			return fmt.Sprintf("%v\n", res.Path)
		}
	}
	control := func(op uint8, a, b uint32, cost uint32) func() string {
		return func() string {
			cr, err := cl.Control(op, ad.ID(a), ad.ID(b), cost)
			if err != nil {
				t.Fatalf("control %d: %v", op, err)
			}
			if !cr.OK() {
				return cr.Err + "\n"
			}
			if op == wire.CtlInvalidate {
				return fmt.Sprintf("ok (gen %d)\n", cr.Gen)
			}
			var out string
			if cr.Flushed > 0 {
				out = fmt.Sprintf("flushed %d handle entries\n", cr.Flushed)
			}
			return out + fmt.Sprintf("ok (evicted %d, retained %d)\n", cr.Evicted, cr.Retained)
		}
	}

	step("install 1 4", func() string {
		dr, err := cl.DataOp(wire.OpInstall, 0, 0, policy.Request{Src: 1, Dst: 4})
		if err != nil {
			t.Fatalf("install: %v", err)
		}
		if dr.Code != wire.DataOK {
			return fmt.Sprintf("no-route %v\n", policy.Request{Src: 1, Dst: 4})
		}
		return fmt.Sprintf("handle %d via %v\n", dr.Handle, dr.Path)
	})
	step("send 1", func() string {
		dr, err := cl.DataOp(wire.OpSend, 1, 0, policy.Request{})
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		if dr.Code != wire.DataOK {
			t.Fatalf("send code %d", dr.Code)
		}
		return "delivered\n"
	})
	step("1 4", query(1, 4))
	step("fail 2 4", control(wire.CtlFail, 2, 4, 0))
	step("1 4", query(1, 4))
	step("repair", func() string {
		dr, err := cl.DataOp(wire.OpRepair, 0, 0, policy.Request{})
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		return fmt.Sprintf("repaired %d/%d flows\n", dr.N2, dr.N1)
	})
	step("restore 2 4", control(wire.CtlRestore, 2, 4, 0))
	step("1 4", query(1, 4))
	step("fail 9 9", control(wire.CtlFail, 9, 9, 0))
	step("restore 9 9", control(wire.CtlRestore, 9, 9, 0))
	step("policy 2 100", control(wire.CtlPolicy, 2, 0, 100))
	step("1 4", query(1, 4))
	step("invalidate", control(wire.CtlInvalidate, 0, 0, 0))
	step("1 4", query(1, 4))
	step("99 98", query(99, 98))

	// Plan/commit must render identically too: the what-if report, the
	// committed summary, the staleness refusal, and the unknown-plan error
	// all flow through the same HandlePlan/RenderPlanReply pair.
	planWire := func(steps ...wire.PlanStep) func() string {
		return func() string {
			rep, err := cl.Plan(steps)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			return strings.Join(daemon.RenderPlanReply(rep), "\n") + "\n"
		}
	}
	commitWire := func(id uint64) func() string {
		return func() string {
			rep, err := cl.Commit(id)
			if err != nil {
				t.Fatalf("commit %d: %v", id, err)
			}
			return strings.Join(daemon.RenderPlanReply(rep), "\n") + "\n"
		}
	}
	step("plan fail 2 4; policy 2 50", planWire(
		wire.PlanStep{Op: wire.CtlFail, A: 2, B: 4},
		wire.PlanStep{Op: wire.CtlPolicy, A: 2, Cost: 50},
	))
	step("commit 1", commitWire(1))
	step("1 4", query(1, 4))
	step("restore 2 4", control(wire.CtlRestore, 2, 4, 0))
	step("plan fail 2 4", planWire(wire.PlanStep{Op: wire.CtlFail, A: 2, B: 4}))
	step("policy 2 1", control(wire.CtlPolicy, 2, 0, 1))
	step("commit 2", commitWire(2)) // stale: the policy change moved the epoch
	step("commit 99", commitWire(99))
	step("plan", func() string {
		_, err := parsePlanSteps("")
		return err.Error() + "\n"
	})

	step("stats", func() string {
		st, err := cl.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		return fmt.Sprintf("gen %d: %d queries, %d hits, %d coalesced, %d misses, %d failures, %d cached\n",
			st.Gen, st.Queries, st.Hits, st.Coalesced, st.Misses, st.Failures, st.Cached)
	})

	// The line side: the same script against a fresh identical world.
	lineOut := session(t, strings.Join(lines, "\n")+"\n")
	if want := strings.Join(fromWire, ""); lineOut != want {
		t.Fatalf("line mode and binary protocol diverged.\nline mode:\n%s\nprotocol:\n%s", lineOut, want)
	}
}

// TestServeLongLines pins the scanner regression: a line beyond
// bufio.Scanner's 64KB default must still be served, and input beyond
// maxLineBytes must surface a read error instead of masquerading as a
// clean quit.
func TestServeLongLines(t *testing.T) {
	long := "# " + strings.Repeat("x", 100*1024)
	out := session(t, long+"\n1 4\nquit\n")
	if !strings.Contains(out, "AD1>AD2>AD4") {
		t.Fatalf("session died on a 100KB line:\n%s", out)
	}

	g, db, srv, dp := testWorld(t)
	var sb strings.Builder
	huge := strings.Repeat("y", maxLineBytes+1)
	err := serve(strings.NewReader(huge), &sb, daemon.NewBackend(srv, dp, g, db))
	if err == nil {
		t.Fatal("an over-limit line was not surfaced as an error")
	}
	if !strings.Contains(sb.String(), "read error") {
		t.Fatalf("read error not reported to the session:\n%s", sb.String())
	}
}
