// Command routed fronts the route-server serving layer (§5.4): a concurrent
// query engine — sharded route cache, request coalescing, generation-based
// invalidation — wrapped around a route-synthesis strategy.
//
// Three modes:
//
//   - Line mode (default): reads queries from stdin, one per line
//     ("SRC DST [QOS UCI HOUR]"), answers each, and accepts the commands
//     "fail A B", "restore A B", "policy AD COST", "invalidate", "stats",
//     and "quit", plus the data-plane commands "install SRC DST [QOS UCI
//     HOUR]", "send HANDLE", "refresh", "tick SECONDS", "repair", and
//     "state". fail/restore/policy invalidate the route cache scoped to
//     the change — entries provably unaffected keep serving (still legal,
//     possibly no longer optimal after a restore or policy broadening);
//     "invalidate" forces the full generation bump that restores
//     optimality. Served routes are installed as per-PG handle state whose
//     lifecycle (-state hard|soft|capped, -state-ttl, -state-cap)
//     follows §6. "plan STEP[; STEP ...]" (steps "fail A B", "restore A
//     B", "policy AD COST") predicts a change batch's blast radius —
//     cache evictions, flow teardowns, pairs losing all routes — without
//     mutating anything, and "commit ID" applies a predicted plan unless
//     the server's mutation epoch moved since (staleness guard).
//
//   - Daemon mode (-listen addr and/or -unix path): serves the same
//     commands as a network daemon speaking the framed binary protocol of
//     internal/wire over TCP or a unix socket — per-connection sessions,
//     bounded write queues with slow-client eviction (-write-queue,
//     -write-timeout), and a connection limit (-max-conns). SIGINT,
//     SIGTERM, or a Drain protocol message triggers a graceful drain:
//     stop accepting, finish in-flight requests, flush replies, close.
//     With -replica-id and -peers (entries "ID@haAddr@clientAddr") the
//     daemon joins an HA replica group: the primary (-replica-of, default
//     lowest ID) streams its warm cache and control mutations to the
//     followers, followers redirect clients to the primary and promote
//     the lowest live ID when it goes silent.
//
//   - Load mode (-load): replays a synthetic workload (uniform / Zipf /
//     gravity) from -clients concurrent goroutines, optionally injecting
//     churn mid-run (-churn, or a -scenario file's event timeline), then
//     prints a serving report. -bench-json writes it machine-readably.
//     With -connect addr the workload is instead replayed over the wire
//     against a running daemon, one connection per client, with optional
//     connection churn (-reconnect-every); a comma-separated -connect
//     list makes every client a failover client over the replica group
//     (NotPrimary redirects followed, dead replicas rotated past).
//
// The internet is either generated (-seed and the topology defaults shared
// with the experiment harness) or taken from a -scenario file, in which case
// the scenario's workload and events are used too.
//
// Usage:
//
//	routed [-strategy on-demand|precomputed|hybrid|pruned] [-load] \
//	       [-scenario file.json] [-seed N] [-requests N] [-model zipf] \
//	       [-clients N] [-churn] [-cache N] [-shards N] [-workers N] \
//	       [-qos N] [-uci N] [-bench-json file] \
//	       [-state hard|soft|capped] [-state-ttl dur] [-state-cap N] \
//	       [-cpuprofile file] [-memprofile file] \
//	       [-blockprofile file] [-mutexprofile file]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"runtime"
	"runtime/pprof"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/pgstate"
	"repro/internal/policy"
	"repro/internal/routeserver"
	"repro/internal/routeserver/daemon"
	"repro/internal/routeserver/ha"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/synthesis"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scenarioPath   = flag.String("scenario", "", "scenario file supplying topology, policy, workload, and churn events")
		seed           = flag.Int64("seed", 42, "seed for the generated internet and workload")
		strategy       = flag.String("strategy", "on-demand", "synthesis strategy: on-demand, precomputed, hybrid, pruned")
		cacheCap       = flag.Int("cache", 0, "server route-cache capacity in entries (0 = default, <0 = unbounded)")
		shards         = flag.Int("shards", 0, "cache shard count, rounded up to a power of two (0 = default)")
		workers        = flag.Int("workers", 0, "max concurrent synthesis computations (0 = GOMAXPROCS)")
		load           = flag.Bool("load", false, "run the load generator instead of reading stdin")
		clients        = flag.Int("clients", 4, "concurrent client goroutines in load mode")
		requests       = flag.Int("requests", 2000, "workload length in load mode (ignored with -scenario)")
		model          = flag.String("model", "zipf", "workload model in load mode: uniform, zipf, gravity")
		zipfS          = flag.Float64("zipf", 1.4, "Zipf skew for -model zipf")
		qosClasses     = flag.Int("qos", 2, "QOS classes in the workload and precomputation")
		uciClasses     = flag.Int("uci", 2, "UCI classes in the workload and precomputation")
		churn          = flag.Bool("churn", false, "load mode: fail a lateral link at 40% and restore it at 70% of the run")
		benchJSON      = flag.String("bench-json", "", "load mode: also write the report as JSON to this file")
		listenAddr     = flag.String("listen", "", "serve the binary protocol on this TCP address (daemon mode)")
		unixPath       = flag.String("unix", "", "serve the binary protocol on this unix socket path (daemon mode)")
		connectAddr    = flag.String("connect", "", "load mode: drive a running daemon at this address instead of serving in-process (host:port, or a unix socket path containing '/')")
		maxConns       = flag.Int("max-conns", 0, "daemon mode: concurrent connection limit (0 = default 2048)")
		writeQueue     = flag.Int("write-queue", 0, "daemon mode: per-session reply queue length (0 = default 128)")
		writeTimeout   = flag.Duration("write-timeout", 0, "daemon mode: slow-client grace before eviction (0 = default 2s)")
		reconnectEvery = flag.Int("reconnect-every", 0, "load mode with -connect: each client redials after this many requests (0 = never)")
		replicaID      = flag.Uint("replica-id", 0, "daemon mode: this replica's ID in an HA group (0 = standalone)")
		peersFlag      = flag.String("peers", "", "daemon mode: HA group membership as ID@haAddr@clientAddr, comma-separated, this replica included")
		replicaOf      = flag.Uint("replica-of", 0, "daemon mode: initial primary's replica ID (0 = lowest peer ID)")
		stateKind      = flag.String("state", "hard", "PG handle lifecycle for installed routes: hard, soft, capped")
		stateTTL       = flag.Duration("state-ttl", 30*time.Second, "soft-state TTL in simulated time (-state soft)")
		stateCap       = flag.Int("state-cap", 64, "per-PG handle capacity (-state capped)")
		cpuProfile     = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile     = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		blockProfile   = flag.String("blockprofile", "", "write a pprof blocking profile to this file on exit")
		mutexProfile   = flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file on exit")
	)
	flag.Parse()

	if err := validateFlags(flagCoherence{
		Load:           *load,
		Connect:        *connectAddr,
		ReconnectEvery: *reconnectEvery,
		Churn:          *churn,
		Listen:         *listenAddr,
		Unix:           *unixPath,
		ReplicaID:      *replicaID,
		Peers:          *peersFlag,
		ReplicaOf:      *replicaOf,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "routed: %v\n", err)
		flag.Usage()
		return 2
	}

	g, db, workload, events, err := materialize(*scenarioPath, *seed, *requests, *model, *zipfS, *qosClasses, *uciClasses)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	srv := routeserver.New(buildStrategy(*strategy, g, db, workload, *qosClasses, *uciClasses), routeserver.Config{
		Shards:   *shards,
		Capacity: *cacheCap,
		Workers:  *workers,
		// The query-log ring feeds "plan" its recorded-workload mode: a plan
		// replays the last queries against the shadow world to find pairs
		// that would lose all routes.
		QueryLog: 1024,
	})

	dp, err := routeserver.NewDataPlane(pgstate.Config{
		Kind:     pgstate.Kind(*stateKind),
		TTL:      sim.Time(stateTTL.Microseconds()),
		Capacity: *stateCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *blockProfile, *mutexProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProfiles()

	if *load && *connectAddr != "" {
		// Network load mode: drive a running daemon over the wire. The
		// workload (and the -churn timeline) is regenerated locally from the
		// same seed, so client and daemon agree on the topology.
		var events []daemon.ChurnEvent
		if *churn {
			events = wireChurnEvents(g)
		}
		// A comma-separated -connect names an HA replica set: clients fail
		// over between the addresses and follow NotPrimary redirects.
		var addrs []string
		first := *connectAddr
		if strings.Contains(*connectAddr, ",") {
			addrs = strings.Split(*connectAddr, ",")
			first = addrs[0]
		}
		rep := daemon.LoadRun(networkOf(first), first, workload, daemon.LoadConfig{
			Clients:        *clients,
			ReconnectEvery: *reconnectEvery,
			Events:         events,
			Addrs:          addrs,
			Seed:           *seed,
		})
		printNetReport(os.Stdout, rep)
		if *benchJSON != "" {
			if err := writeNetJSON(*benchJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if rep.Errors > 0 {
			return 1
		}
		return 0
	}

	if *load {
		if *churn {
			events = append(events, churnEvents(g)...)
		}
		rep := routeserver.Run(srv, workload, routeserver.LoadConfig{Clients: *clients, Events: events})
		printReport(os.Stdout, srv, rep)
		if *benchJSON != "" {
			if err := writeJSON(*benchJSON, srv, rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	be := daemon.NewBackend(srv, dp, g, db)

	if *listenAddr != "" || *unixPath != "" {
		return runDaemon(be, *listenAddr, *unixPath, daemon.Config{
			MaxConns:     *maxConns,
			WriteQueue:   *writeQueue,
			WriteTimeout: *writeTimeout,
		}, uint32(*replicaID), uint32(*replicaOf), *peersFlag)
	}

	if err := serve(os.Stdin, os.Stdout, be); err != nil {
		return 1
	}
	return 0
}

// flagCoherence carries the mode-selecting flags into validateFlags, which
// is pure so tests can table-drive it.
type flagCoherence struct {
	Load           bool
	Connect        string
	ReconnectEvery int
	Churn          bool
	Listen         string
	Unix           string
	ReplicaID      uint
	Peers          string
	ReplicaOf      uint
}

// validateFlags rejects incoherent flag combinations up front with a usage
// error instead of letting a half-selected mode silently misbehave (e.g.
// -connect without -load would drop into line mode and never dial out).
func validateFlags(f flagCoherence) error {
	daemonMode := f.Listen != "" || f.Unix != ""
	if f.Connect != "" && !f.Load {
		return fmt.Errorf("-connect drives a running daemon from the load harness; add -load")
	}
	if f.ReconnectEvery != 0 && f.Connect == "" {
		return fmt.Errorf("-reconnect-every only applies to network load mode; add -connect")
	}
	if f.Churn && !f.Load {
		return fmt.Errorf("-churn injects events into a load run; add -load")
	}
	if f.Load && daemonMode {
		return fmt.Errorf("-load and -listen/-unix are exclusive: one process is either the load generator or the daemon")
	}
	if f.ReplicaID != 0 && !daemonMode {
		return fmt.Errorf("-replica-id joins an HA group in daemon mode; add -listen or -unix")
	}
	if f.ReplicaID != 0 && f.Peers == "" {
		return fmt.Errorf("-replica-id requires -peers (ID@haAddr@clientAddr,...)")
	}
	if f.Peers != "" && f.ReplicaID == 0 {
		return fmt.Errorf("-peers requires -replica-id to say which entry is this replica")
	}
	if f.ReplicaOf != 0 && f.ReplicaID == 0 {
		return fmt.Errorf("-replica-of names the initial primary of an HA group; add -replica-id and -peers")
	}
	return nil
}

// runDaemon serves the binary protocol on the requested listeners until a
// drain completes — triggered by SIGINT/SIGTERM or a Drain protocol
// message. In-flight requests finish and their replies flush before the
// connections close. With replicaID and peers set, the daemon joins an HA
// replica group: followers stream the primary's warm state and redirect
// clients, and a dead primary is failed over by heartbeat election.
func runDaemon(be *daemon.Backend, tcpAddr, unixPath string, cfg daemon.Config, replicaID, replicaOf uint32, peersSpec string) int {
	d := daemon.New(be, cfg)
	if replicaID != 0 {
		peers, err := parsePeers(peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		node, err := ha.NewNode(ha.Config{
			ID: replicaID, Peers: peers, Primary: replicaOf,
		}, be, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		node.Start()
		defer node.Stop()
		role := "follower"
		if node.IsPrimary() {
			role = "primary"
		}
		fmt.Printf("replica %d (%s) replicating on %v\n", replicaID, role, node.Addr())
	}
	var listeners []net.Listener
	if tcpAddr != "" {
		ln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		listeners = append(listeners, ln)
	}
	if unixPath != "" {
		ln, err := net.Listen("unix", unixPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		listeners = append(listeners, ln)
	}
	for _, ln := range listeners {
		fmt.Printf("listening on %v\n", ln.Addr())
		go func(ln net.Listener) {
			if err := d.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}(ln)
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigC
		signal.Stop(sigC)
		d.Drain()
	}()

	<-d.Done()
	m := d.Metrics()
	fmt.Printf("drained: %d sessions served, %d requests, %d refused, %d evicted\n",
		m.Accepted, m.Requests, m.Refused, m.Evicted)
	return 0
}

// parsePeers parses the -peers spec: comma-separated ID@haAddr@clientAddr.
func parsePeers(spec string) ([]ha.Peer, error) {
	if spec == "" {
		return nil, fmt.Errorf("-replica-id requires -peers (ID@haAddr@clientAddr,...)")
	}
	var peers []ha.Peer
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), "@")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad peer %q, want ID@haAddr@clientAddr", part)
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad peer ID %q", fields[0])
		}
		peers = append(peers, ha.Peer{ID: uint32(id), HAAddr: fields[1], ClientAddr: fields[2]})
	}
	return peers, nil
}

// networkOf picks the dial network for a -connect address: a path-looking
// address means a unix socket, anything else TCP.
func networkOf(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

// wireChurnEvents is -churn for network load mode: the same lateral-link
// fail/restore timeline as churnEvents, expressed as protocol messages.
func wireChurnEvents(g *ad.Graph) []daemon.ChurnEvent {
	links := g.Links()
	if len(links) == 0 {
		return nil
	}
	target := links[0]
	for _, l := range links {
		if l.Class == ad.Lateral {
			target = l
			break
		}
	}
	return []daemon.ChurnEvent{
		{After: 0.4, Op: wire.CtlFail, A: target.A, B: target.B},
		{After: 0.7, Op: wire.CtlRestore, A: target.A, B: target.B},
	}
}

// printNetReport renders a network load-mode report.
func printNetReport(w io.Writer, rep daemon.LoadReport) {
	fmt.Fprintf(w, "requests    %d (%d served, %d no-route, %d errors)\n",
		rep.Requests, rep.Served, rep.NoRoute, rep.Errors)
	fmt.Fprintf(w, "elapsed     %v (%.0f qps)\n", rep.Elapsed, rep.QPS)
	fmt.Fprintf(w, "churn       %d reconnects, %d failed dials, %d redirects\n",
		rep.Reconnects, rep.ReconnectFailures, rep.Redirects)
	fmt.Fprintf(w, "stall       %v max gap between replies\n", rep.MaxStall)
	fmt.Fprintf(w, "latency     p50 %v  p95 %v  p99 %v\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99)
}

// writeNetJSON writes the machine-readable form of a network load report.
func writeNetJSON(path string, rep daemon.LoadReport) error {
	out, err := json.MarshalIndent(map[string]any{
		"requests":           rep.Requests,
		"served":             rep.Served,
		"no_route":           rep.NoRoute,
		"errors":             rep.Errors,
		"reconnects":         rep.Reconnects,
		"reconnect_failures": rep.ReconnectFailures,
		"redirects":          rep.Redirects,
		"max_stall_ns":       rep.MaxStall.Nanoseconds(),
		"elapsed_ns":         rep.Elapsed.Nanoseconds(),
		"qps":                rep.QPS,
		"latency_p50":        rep.Latency.P50.Nanoseconds(),
		"latency_p95":        rep.Latency.P95.Nanoseconds(),
		"latency_p99":        rep.Latency.P99.Nanoseconds(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// startProfiles begins CPU profiling, enables block/mutex sampling when
// those profiles are requested, and arranges heap/block/mutex snapshots at
// stop time. Empty paths disable the corresponding profile; block and
// mutex sampling stay off unless asked for (they tax the hot path).
func startProfiles(cpuPath, memPath, blockPath, mutexPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	writeLookup := func(name, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		writeLookup("block", blockPath)
		writeLookup("mutex", mutexPath)
	}, nil
}

// materialize builds the internet and workload, either from a scenario file
// (whose events become the churn timeline, spread evenly through the run)
// or generated from the seed.
func materialize(path string, seed int64, requests int, model string, zipfS float64, qos, uci int) (
	*ad.Graph, *policy.DB, []policy.Request, []routeserver.Event, error) {
	if path == "" {
		topo := topology.Generate(topology.Config{
			Seed:                 seed,
			Backbones:            2,
			RegionalsPerBackbone: 3,
			CampusesPerParent:    3,
			LateralProb:          0.25,
			BypassProb:           0.10,
			MultihomedProb:       0.15,
			HybridProb:           0.15,
		})
		db := policy.Generate(topo.Graph, policy.GenConfig{
			Seed:                  seed,
			SourceRestrictionProb: 0.6,
			SourceFraction:        0.5,
			DestRestrictionProb:   0.2,
			DestFraction:          0.7,
			AvoidProb:             0.2,
		})
		workload := trafficgen.Generate(topo.Graph, trafficgen.Config{
			Seed:       seed + 2,
			Requests:   requests,
			StubsOnly:  true,
			Model:      model,
			ZipfS:      zipfS,
			QOSClasses: qos,
			UCIClasses: uci,
		})
		return topo.Graph, db, workload, nil, nil
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g, db, workload, err := sc.Materialize()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	muts, err := sc.Mutations(g, db)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	events := make([]routeserver.Event, len(muts))
	for i, m := range muts {
		events[i] = routeserver.Event{
			After:  float64(i+1) / float64(len(muts)+1),
			Label:  m.Label,
			Apply:  m.Apply,
			Change: m.Change,
		}
	}
	return g, db, workload, events, nil
}

// buildStrategy constructs the named synthesis strategy sized to the
// workload's class spread.
func buildStrategy(kind string, g *ad.Graph, db *policy.DB, workload []policy.Request, qos, uci int) synthesis.Strategy {
	switch kind {
	case "precomputed":
		var all []policy.Request
		for q := 0; q < max(qos, 1); q++ {
			for u := 0; u < max(uci, 1); u++ {
				all = append(all, core.AllPairsRequests(g, true, policy.QOS(q), policy.UCI(u))...)
			}
		}
		return synthesis.NewPrecomputed(g, db, all)
	case "hybrid":
		hot := len(workload) / 10
		if hot == 0 {
			hot = len(workload)
		}
		return synthesis.NewHybrid(g, db, workload[:hot])
	case "pruned":
		var stubs []ad.ID
		for _, info := range g.ADs() {
			if info.Class == ad.Stub || info.Class == ad.MultihomedStub {
				stubs = append(stubs, info.ID)
			}
		}
		return synthesis.NewPrunedConfig(g, db, stubs, synthesis.PrunedConfig{
			HopRadius: 2, QOSClasses: qos, UCIClasses: uci,
		})
	case "on-demand":
		return synthesis.NewOnDemand(g, db)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q; choose on-demand, precomputed, hybrid, or pruned\n", kind)
		os.Exit(2)
		return nil
	}
}

// churnEvents is the built-in -churn timeline: the first lateral link (or,
// failing that, the first link) goes down at 40% of the run and comes back
// at 70%.
func churnEvents(g *ad.Graph) []routeserver.Event {
	links := g.Links()
	if len(links) == 0 {
		return nil
	}
	target := links[0]
	for _, l := range links {
		if l.Class == ad.Lateral {
			target = l
			break
		}
	}
	return []routeserver.Event{
		{After: 0.4, Label: fmt.Sprintf("fail %v-%v", target.A, target.B),
			Apply:  func() { g.RemoveLink(target.A, target.B) },
			Change: synthesis.LinkDownChange(target.A, target.B)},
		{After: 0.7, Label: fmt.Sprintf("restore %v-%v", target.A, target.B),
			Apply:  func() { _ = g.AddLink(target) },
			Change: synthesis.LinkUpChange(target.A, target.B)},
	}
}

// printReport renders a load-mode serving report.
func printReport(w io.Writer, srv *routeserver.Server, rep routeserver.Report) {
	m := rep.Metrics
	fmt.Fprintf(w, "strategy    %s\n", srv.StrategyName())
	fmt.Fprintf(w, "requests    %d (%d served, %d no-route)\n", rep.Requests, rep.Served, rep.NoRoute)
	fmt.Fprintf(w, "elapsed     %v (%.0f qps)\n", rep.Elapsed, rep.QPS)
	fmt.Fprintf(w, "cache       %d hits, %d coalesced, %d misses (%.1f%% served without synthesis)\n",
		m.Hits, m.Coalesced, m.Misses, 100*m.HitRate())
	fmt.Fprintf(w, "churn       %d full invalidations, %d scoped (%d evicted, %d retained), %d evictions\n",
		m.Invalidations, m.ScopedMutations, m.ScopedEvicted, m.ScopedRetained, m.Evictions)
	fmt.Fprintf(w, "latency     p50 %v  p95 %v  p99 %v\n", m.Latency.P50, m.Latency.P95, m.Latency.P99)
	st := rep.Strategy
	fmt.Fprintf(w, "synthesis   %d precompute + %d on-demand expansions, %d entries cached by the strategy\n",
		st.PrecomputeExpansions, st.OnDemandExpansions, st.CacheEntries)
}

// writeJSON writes the machine-readable form of the report.
func writeJSON(path string, srv *routeserver.Server, rep routeserver.Report) error {
	m := rep.Metrics
	out, err := json.MarshalIndent(map[string]any{
		"strategy":         srv.StrategyName(),
		"requests":         rep.Requests,
		"served":           rep.Served,
		"no_route":         rep.NoRoute,
		"elapsed_ns":       rep.Elapsed.Nanoseconds(),
		"qps":              rep.QPS,
		"hits":             m.Hits,
		"coalesced":        m.Coalesced,
		"misses":           m.Misses,
		"hit_rate":         m.HitRate(),
		"invalidations":    m.Invalidations,
		"scoped_mutations": m.ScopedMutations,
		"scoped_evicted":   m.ScopedEvicted,
		"scoped_retained":  m.ScopedRetained,
		"evictions":        m.Evictions,
		"latency_p50":      m.Latency.P50.Nanoseconds(),
		"latency_p95":      m.Latency.P95.Nanoseconds(),
		"latency_p99":      m.Latency.P99.Nanoseconds(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// maxLineBytes bounds one line-mode input line (bufio.Scanner's 64KB
// default is too small for scripted sessions with long comment or batch
// lines).
const maxLineBytes = 1 << 20

// serve runs line mode: one query or command per stdin line. It is
// factored over io.Reader/io.Writer so tests can script a full session.
// A read error — including a line over maxLineBytes — is surfaced on out
// and returned; it must not masquerade as a clean quit.
func serve(in io.Reader, out io.Writer, be *daemon.Backend) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		if !serveLine(sc.Text(), out, be) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(out, "read error: %v\n", err)
		return err
	}
	return nil
}

// serveLine executes one line-mode command against the shared backend —
// the same dispatch the binary protocol uses — reporting whether the
// session continues. The text in and out is the only thing this adapter
// owns.
func serveLine(line string, out io.Writer, be *daemon.Backend) bool {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return true
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "quit", "exit":
		return false
	case "stats":
		st := be.Stats()
		fmt.Fprintf(out, "gen %d: %d queries, %d hits, %d coalesced, %d misses, %d failures, %d cached\n",
			st.Gen, st.Queries, st.Hits, st.Coalesced, st.Misses, st.Failures, st.Cached)
		// Connection counters exist only when a daemon fronts this backend;
		// line mode stays short so session parity with the wire rendering
		// holds.
		if st.ConnsKnown {
			fmt.Fprintf(out, "conns: %d accepted, %d evicted-slow, %d refused\n",
				st.Accepted, st.EvictedSlow, st.Refused)
		}
	case "fail", "restore":
		a, b, ok := twoIDs(fields[1:])
		if !ok {
			fmt.Fprintf(out, "usage: %s A B\n", fields[0])
			return true
		}
		var evicted, retained int
		if fields[0] == "fail" {
			var flushed int
			var err error
			evicted, retained, flushed, err = be.Fail(a, b)
			if err != nil {
				fmt.Fprintln(out, err)
				return true
			}
			// Failure-driven repair: flush installed handle state that
			// crossed the dead link and queue its flows for "repair".
			if flushed > 0 {
				fmt.Fprintf(out, "flushed %d handle entries\n", flushed)
			}
		} else {
			var err error
			evicted, retained, err = be.Restore(a, b)
			if err != nil {
				fmt.Fprintln(out, err)
				return true
			}
		}
		fmt.Fprintf(out, "ok (evicted %d, retained %d)\n", evicted, retained)
	case "policy":
		// policy AD COST: replace the AD's terms with one open term.
		a, c, ok := twoIDs(fields[1:])
		if !ok {
			fmt.Fprintln(out, "usage: policy AD COST")
			return true
		}
		evicted, retained := be.SetPolicy(a, uint32(c))
		fmt.Fprintf(out, "ok (evicted %d, retained %d)\n", evicted, retained)
	case "invalidate":
		// Full generation bump: drops every cached route, restoring
		// optimality after scoped retentions.
		fmt.Fprintf(out, "ok (gen %d)\n", be.Invalidate())
	case "install":
		// install SRC DST [QOS UCI HOUR]: serve a route and install it as
		// PG handle state so data can flow over it.
		req, err := parseQuery(fields[1:])
		if err != nil {
			fmt.Fprintln(out, "usage: install SRC DST [QOS UCI HOUR]")
			return true
		}
		h, path, found := be.Install(req)
		if !found {
			fmt.Fprintf(out, "no-route %v\n", req)
			return true
		}
		fmt.Fprintf(out, "handle %d via %v\n", h, path)
	case "send":
		// send HANDLE: forward one data packet over installed state.
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: send HANDLE")
			return true
		}
		h, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "bad handle %q\n", fields[1])
			return true
		}
		switch r := be.Send(h); {
		case r.Delivered:
			fmt.Fprintln(out, "delivered")
		case r.MissAt != 0:
			fmt.Fprintf(out, "no-state at %v (flow queued for repair)\n", r.MissAt)
		default:
			fmt.Fprintf(out, "unknown handle %d\n", h)
		}
	case "refresh":
		refreshed, failed := be.Refresh()
		fmt.Fprintf(out, "refreshed %d flows, %d lost state\n", refreshed, failed)
	case "tick":
		// tick SECONDS: advance the data plane's soft-state clock.
		secs := int64(1)
		if len(fields) > 1 {
			v, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil || v <= 0 {
				fmt.Fprintln(out, "usage: tick SECONDS")
				return true
			}
			secs = v
		}
		now, expired := be.Tick(secs)
		fmt.Fprintf(out, "t=%ds, %d entries expired\n", now, expired)
	case "repair":
		attempted, repaired := be.Repair()
		fmt.Fprintf(out, "repaired %d/%d flows\n", repaired, attempted)
	case "state":
		fmt.Fprintln(out, be.State())
	case "plan":
		// plan STEP[; STEP ...]: predict the batch's blast radius without
		// applying it. Same execution path as the wire Plan message.
		steps, err := parsePlanSteps(strings.TrimSpace(strings.TrimPrefix(line, "plan")))
		if err != nil {
			fmt.Fprintln(out, err)
			return true
		}
		for _, l := range daemon.RenderPlanReply(be.HandlePlan(&wire.Plan{Steps: steps})) {
			fmt.Fprintln(out, l)
		}
	case "commit":
		// commit ID: apply a previously planned batch; refused if the
		// mutation epoch moved since the plan.
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: commit PLAN_ID")
			return true
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "bad plan id %q\n", fields[1])
			return true
		}
		for _, l := range daemon.RenderPlanReply(be.HandlePlan(&wire.Plan{Commit: true, PlanID: id})) {
			fmt.Fprintln(out, l)
		}
	default:
		req, err := parseQuery(fields)
		if err != nil {
			fmt.Fprintln(out, err)
			return true
		}
		res := be.Query(req)
		if res.Found {
			fmt.Fprintf(out, "%v\n", res.Path)
		} else {
			fmt.Fprintf(out, "no-route %v\n", req)
		}
	}
	return true
}

// parsePlanSteps parses the "plan" argument: semicolon-separated steps,
// each "fail A B", "restore A B", or "policy AD COST".
func parsePlanSteps(spec string) ([]wire.PlanStep, error) {
	usage := fmt.Errorf("usage: plan STEP[; STEP ...] with STEP one of \"fail A B\", \"restore A B\", \"policy AD COST\"")
	if spec == "" {
		return nil, usage
	}
	var steps []wire.PlanStep
	for _, part := range strings.Split(spec, ";") {
		f := strings.Fields(part)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "fail", "restore":
			a, b, ok := twoIDs(f[1:])
			if !ok {
				return nil, usage
			}
			op := uint8(wire.CtlFail)
			if f[0] == "restore" {
				op = wire.CtlRestore
			}
			steps = append(steps, wire.PlanStep{Op: op, A: a, B: b})
		case "policy":
			a, c, ok := twoIDs(f[1:])
			if !ok {
				return nil, usage
			}
			steps = append(steps, wire.PlanStep{Op: wire.CtlPolicy, A: a, Cost: uint32(c)})
		default:
			return nil, fmt.Errorf("unknown plan step %q: %v", f[0], usage)
		}
	}
	if len(steps) == 0 {
		return nil, usage
	}
	return steps, nil
}

// parseQuery parses "SRC DST [QOS UCI HOUR]".
func parseQuery(fields []string) (policy.Request, error) {
	var req policy.Request
	if len(fields) < 2 || len(fields) > 5 {
		return req, fmt.Errorf("query is SRC DST [QOS UCI HOUR]; commands are fail, restore, policy, invalidate, plan, commit, stats, install, send, refresh, tick, repair, state, quit")
	}
	vals := make([]uint64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return req, fmt.Errorf("bad number %q", f)
		}
		vals[i] = v
	}
	req.Src, req.Dst = ad.ID(vals[0]), ad.ID(vals[1])
	if len(vals) > 2 {
		req.QOS = policy.QOS(vals[2])
	}
	if len(vals) > 3 {
		req.UCI = policy.UCI(vals[3])
	}
	if len(vals) > 4 {
		req.Hour = uint8(vals[4])
	}
	return req, nil
}

// twoIDs parses two numeric arguments.
func twoIDs(fields []string) (ad.ID, ad.ID, bool) {
	if len(fields) != 2 {
		return 0, 0, false
	}
	a, errA := strconv.ParseUint(fields[0], 10, 32)
	b, errB := strconv.ParseUint(fields[1], 10, 32)
	if errA != nil || errB != nil {
		return 0, 0, false
	}
	return ad.ID(a), ad.ID(b), true
}
