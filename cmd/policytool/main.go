// Command policytool predicts the impact of a proposed policy change — the
// network-management capability the paper's §6 calls for. It generates an
// internet and policy set, applies a hypothetical change to one AD, and
// reports connectivity, transit-load, and synthesis-cost deltas without
// deploying anything.
//
// Usage:
//
//	policytool -seed 7 -ad 3 -action close
//	policytool -ad 3 -action restrict -allow 9,10,11
//	policytool -ad 3 -action open
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/policytool"
	"repro/internal/topology"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "seed for topology and policy generation")
		adFlag      = flag.Uint("ad", 0, "AD whose policy to change (0 = first transit AD)")
		action      = flag.String("action", "close", "proposed change: close | open | restrict")
		allow       = flag.String("allow", "", "comma-separated source AD IDs for -action restrict")
		restriction = flag.Float64("restriction", 0.3, "baseline source-restriction probability")
	)
	flag.Parse()

	topo := topology.Generate(topology.Config{
		Seed: *seed, Backbones: 2, RegionalsPerBackbone: 3,
		CampusesPerParent: 3, LateralProb: 0.25, BypassProb: 0.1,
	})
	g := topo.Graph
	db := policy.Generate(g, policy.GenConfig{
		Seed: *seed + 1, SourceRestrictionProb: *restriction, SourceFraction: 0.5,
	})

	target := ad.ID(*adFlag)
	if target == ad.Invalid {
		for _, info := range g.ADs() {
			if info.Class == ad.Transit {
				target = info.ID
				break
			}
		}
	}
	if _, ok := g.AD(target); !ok {
		fmt.Fprintf(os.Stderr, "unknown AD %v\n", target)
		os.Exit(2)
	}

	var newTerms []policy.Term
	switch *action {
	case "close":
		newTerms = nil
	case "open":
		newTerms = []policy.Term{policy.OpenTerm(target, 0)}
	case "restrict":
		if *allow == "" {
			fmt.Fprintln(os.Stderr, "-action restrict requires -allow id,id,...")
			os.Exit(2)
		}
		var ids []ad.ID
		for _, part := range strings.Split(*allow, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad AD id %q: %v\n", part, err)
				os.Exit(2)
			}
			ids = append(ids, ad.ID(v))
		}
		term := policy.OpenTerm(target, 0)
		term.Sources = policy.SetOf(ids...)
		newTerms = []policy.Term{term}
	default:
		fmt.Fprintf(os.Stderr, "unknown action %q\n", *action)
		os.Exit(2)
	}

	reqs := core.AllPairsRequests(g, true, 0, 0)
	im := policytool.Assess(g, db, target, newTerms, reqs)
	if err := im.Report(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
