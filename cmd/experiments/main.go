// Command experiments regenerates every table and figure of the
// reproduction: the Table 1 design-space comparison, the Figure 1 topology
// validation, and experiments E1–E25 (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments [-seed N] [-parallel N] [-only table1|figure1|e1|...|e25] \
//	            [-cpuprofile file] [-memprofile file] \
//	            [-blockprofile file] [-mutexprofile file]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 42, "experiment seed (all results are deterministic in it)")
	only := flag.String("only", "", "run a single experiment: table1, figure1, e1..e25")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent experiment workers (1 = serial; output is identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file on exit")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *blockProfile, *mutexProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProfiles()

	runners := map[string]func(int64) *metrics.Table{
		"table1":  experiments.Table1DesignSpace,
		"figure1": func(int64) *metrics.Table { return experiments.Figure1Topology() },
		"e1":      experiments.E1RouteAvailability,
		"e2":      experiments.E2Convergence,
		"e3":      experiments.E3SpanningTreeReplication,
		"e4":      experiments.E4QOSScaling,
		"e5":      experiments.E5SetupVsHandle,
		"e6":      experiments.E6EGPTopologyRestriction,
		"e7":      experiments.E7SynthesisStrategies,
		"e8":      experiments.E8PolicyGranularity,
		"e9":      experiments.E9MessageScaling,
		"e10":     experiments.E10OrderingSatisfiability,
		"e11":     experiments.E11FilterDiscovery,
		"e12":     experiments.E12IDRPMultiRoute,
		"e13":     experiments.E13TimeOfDay,
		"e14":     experiments.E14PolicyChange,
		"e15":     experiments.E15LogicalClusterCost,
		"e16":     experiments.E16DatabaseDistribution,
		"e17":     experiments.E17SetupAmortization,
		"e18":     experiments.E18PathStretch,
		"e19":     experiments.E19MultihomedStubs,
		"e20":     experiments.E20RouteServer,
		"e21":     experiments.E21StateLifecycles,
		"e22":     experiments.E22ScopedInvalidation,
		"e23":     experiments.E23HAFailover,
		"e24":     experiments.E24PGStateScale,
		"e25":     experiments.E25PlanEngine,
	}

	if *only != "" {
		runner, ok := runners[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of table1, figure1, e1..e25\n", *only)
			return 2
		}
		if err := runner(*seed).Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	for _, tbl := range experiments.RunAll(*seed, *parallel) {
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// startProfiles begins CPU profiling, enables block/mutex sampling when
// those profiles are requested, and arranges heap/block/mutex snapshots at
// stop time. Empty paths disable the corresponding profile; block and
// mutex sampling stay off unless asked for (they tax the hot path).
func startProfiles(cpuPath, memPath, blockPath, mutexPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	writeLookup := func(name, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		writeLookup("block", blockPath)
		writeLookup("mutex", mutexPath)
	}, nil
}
