// Command experiments regenerates every table and figure of the
// reproduction: the Table 1 design-space comparison, the Figure 1 topology
// validation, and experiments E1–E21 (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments [-seed N] [-parallel N] [-only table1|figure1|e1|...|e21]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	seed := flag.Int64("seed", 42, "experiment seed (all results are deterministic in it)")
	only := flag.String("only", "", "run a single experiment: table1, figure1, e1..e21")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent experiment workers (1 = serial; output is identical either way)")
	flag.Parse()

	runners := map[string]func(int64) *metrics.Table{
		"table1":  experiments.Table1DesignSpace,
		"figure1": func(int64) *metrics.Table { return experiments.Figure1Topology() },
		"e1":      experiments.E1RouteAvailability,
		"e2":      experiments.E2Convergence,
		"e3":      experiments.E3SpanningTreeReplication,
		"e4":      experiments.E4QOSScaling,
		"e5":      experiments.E5SetupVsHandle,
		"e6":      experiments.E6EGPTopologyRestriction,
		"e7":      experiments.E7SynthesisStrategies,
		"e8":      experiments.E8PolicyGranularity,
		"e9":      experiments.E9MessageScaling,
		"e10":     experiments.E10OrderingSatisfiability,
		"e11":     experiments.E11FilterDiscovery,
		"e12":     experiments.E12IDRPMultiRoute,
		"e13":     experiments.E13TimeOfDay,
		"e14":     experiments.E14PolicyChange,
		"e15":     experiments.E15LogicalClusterCost,
		"e16":     experiments.E16DatabaseDistribution,
		"e17":     experiments.E17SetupAmortization,
		"e18":     experiments.E18PathStretch,
		"e19":     experiments.E19MultihomedStubs,
		"e20":     experiments.E20RouteServer,
		"e21":     experiments.E21StateLifecycles,
	}

	if *only != "" {
		run, ok := runners[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of table1, figure1, e1..e21\n", *only)
			os.Exit(2)
		}
		if err := run(*seed).Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	for _, tbl := range experiments.RunAll(*seed, *parallel) {
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
